"""The staged mining engine behind every ``AnalyzeByService`` front end.

The paper's Fig. 2 workflow — service partition → scan → parse known →
token-count partition → per-trie analyse → persist — used to be inlined
in :meth:`repro.core.pipeline.SequenceRTG.analyze_by_service` and then
re-implemented in fragments by the cold worker pool, the persistent
worker loop and the warm pool's merge path.  This module makes the
workflow an explicit object instead:

* :class:`ServiceBatchContext` — the typed carrier of one service
  group's intermediate state (scanned messages, dedup multiplicities,
  match tallies, length partitions, discovered patterns) as it flows
  through the stages;
* the five stages — :class:`ScanStage`, :class:`ParseStage`,
  :class:`LengthPartitionStage`, :class:`AnalyzeStage`,
  :class:`PersistStage` — each a small object with a ``name`` and a
  ``run(context)``;
* :class:`StageObserver` — the single instrumentation channel.
  Stage timings (:class:`TimingObserver`), fast-lane cache deltas
  (:class:`FastPathObserver`) and worker-pool counters (the pool's own
  observer in :mod:`repro.core.parallel`) all feed
  :class:`BatchResult` through the same four hooks instead of three
  ad-hoc telemetry paths;
* :class:`MiningEngine` — partitions a batch by service and drives each
  group through the stages, notifying observers around every stage.

Every execution path runs this one engine.  The serial miner uses the
default :class:`PersistStage` (shared database); pool workers substitute
:class:`repro.core.parallel.DeltaPersistStage`, which writes the
worker's private database and accumulates the delta reply for the
parent — the persistence seam is the *only* difference between the
paths, which is what keeps their mined output bit-identical (asserted
by ``tests/core/test_engine.py``, not assumed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import TYPE_CHECKING

from repro._util.timers import StageTimer
from repro.analyzer.evolving import EvolvingAnalyzer
from repro.analyzer.pattern import Pattern
from repro.core.fastpath import FastPath
from repro.core.records import LogRecord
from repro.scanner.scanner import ScannedMessage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.pipeline import SequenceRTG

__all__ = [
    "BatchResult",
    "ServiceBatchContext",
    "Stage",
    "ScanStage",
    "ParseStage",
    "LengthPartitionStage",
    "AnalyzeStage",
    "PersistStage",
    "StageObserver",
    "TimingObserver",
    "FastPathObserver",
    "MiningEngine",
    "drive_stream",
]


@dataclass(slots=True)
class BatchResult:
    """Telemetry of one ``analyze_by_service`` execution."""

    n_records: int = 0
    n_services: int = 0
    n_matched: int = 0  # parsed against already-known patterns
    n_unmatched: int = 0  # sent on to the analyser
    n_partitions: int = 0  # (service, token count) analysis partitions
    n_new_patterns: int = 0  # newly discovered and persisted
    n_below_threshold: int = 0  # discovered but under the save threshold
    max_trie_nodes: int = 0  # memory telemetry (largest analysis trie)
    #: per-stage wall-clock seconds, filled by :class:`TimingObserver`
    timings: dict[str, float] = field(default_factory=dict)
    #: fast-lane effectiveness for this batch: scan/match cache hits,
    #: misses and evictions plus dedup savings (empty when the fast lane
    #: is disabled) — filled by :class:`FastPathObserver` from
    #: :meth:`repro.core.fastpath.FastPath.snapshot` deltas
    cache: dict[str, int] = field(default_factory=dict)
    #: worker-pool telemetry for this batch (empty for in-process runs):
    #: workers used, spawns/respawns, delta-sync and replay payloads —
    #: see :class:`repro.core.parallel.PersistentParallelSequenceRTG`
    pool: dict[str, int] = field(default_factory=dict)
    #: JSON-compatible dump of this batch's metrics-registry delta
    #: (:mod:`repro.obs`): stage latency histograms, per-service
    #: counters, fast-lane events and DB gauges — empty when
    #: ``RTGConfig.enable_metrics`` is off
    metrics: dict = field(default_factory=dict)
    new_patterns: list[Pattern] = field(default_factory=list)

    @property
    def matched_fraction(self) -> float:
        return self.n_matched / self.n_records if self.n_records else 0.0


@dataclass(slots=True)
class ServiceBatchContext:
    """One service group's state as it flows scan → … → persist.

    Each stage reads the fields earlier stages filled and writes its
    own; the engine folds the final context into the batch-level
    :class:`BatchResult`.
    """

    service: str
    records: list[LogRecord]
    #: timestamp for DB writes (None = wall clock per write)
    now: datetime | None = None
    #: distinct scanned messages in first-occurrence order (ScanStage)
    scanned: list[ScannedMessage] = field(default_factory=list)
    #: dedup multiplicities parallel to ``scanned``; None when the fast
    #: lane is disabled (every message counts once)
    counts: list[int] | None = None
    #: per-message flag: scan served from the cross-batch cache; None
    #: when the fast lane is disabled
    from_cache: list[bool] | None = None
    #: messages no known pattern matched, with their multiplicities
    unmatched: list[ScannedMessage] = field(default_factory=list)
    unmatched_counts: list[int] = field(default_factory=list)
    #: pattern id -> occurrences matched this batch (ParseStage)
    match_counts: dict[str, int] = field(default_factory=dict)
    #: candidate-frontier sizes of the parse matches actually performed
    #: (one entry per distinct token signature matched through the batch
    #: lane) — the ``rtg_parse_candidates`` telemetry (ParseStage)
    parse_frontiers: list[int] = field(default_factory=list)
    #: pattern id -> originals worth storing as examples (ParseStage)
    match_examples: dict[str, list[str]] = field(default_factory=dict)
    #: token count -> (messages, multiplicities) (LengthPartitionStage)
    by_length: dict[int, tuple[list[ScannedMessage], list[int]]] = field(
        default_factory=dict
    )
    #: patterns mined from the length partitions (AnalyzeStage), before
    #: the save threshold is applied
    discovered: list[Pattern] = field(default_factory=list)
    #: discovered patterns that cleared the threshold and were persisted
    new_patterns: list[Pattern] = field(default_factory=list)
    n_below_threshold: int = 0
    max_trie_nodes: int = 0
    #: analysis-trie node count of every length partition mined for this
    #: group (AnalyzeStage) — the ``rtg_analyze_trie_nodes`` telemetry
    trie_node_sizes: list[int] = field(default_factory=list)


# ----------------------------------------------------------------------
# Stages
# ----------------------------------------------------------------------

class Stage:
    """One step of the Fig. 2 workflow over a :class:`ServiceBatchContext`.

    Stages are constructed once per engine and bound to the owning
    miner; ``run`` mutates the context in place.
    """

    name: str = "stage"

    def __init__(self, rtg: "SequenceRTG") -> None:
        self.rtg = rtg

    def run(self, ctx: ServiceBatchContext) -> None:
        raise NotImplementedError


class ScanStage(Stage):
    """Tokenize the group — deduplicated through the fast lane when on."""

    name = "scan"

    def run(self, ctx: ServiceBatchContext) -> None:
        rtg = self.rtg
        if rtg.config.enable_fastpath:
            ctx.scanned, ctx.counts, ctx.from_cache = rtg.fastpath.scan_group(
                rtg.scanner, ctx.service, ctx.records
            )
        else:
            ctx.scanned = rtg.scanner.scan_many(
                [r.message for r in ctx.records], service=ctx.service
            )


class ParseStage(Stage):
    """Match scanned messages against the service's known patterns.

    "If a match is found the last matched date and the number of
    examples ... are adjusted accordingly and no further processing
    occurs" (paper §III) — the adjustments are tallied here and written
    by :class:`PersistStage`.
    """

    name = "parse"

    def __init__(self, rtg: "SequenceRTG", field_tracker=None) -> None:
        super().__init__(rtg)
        #: optional drift seam: an object with
        #: ``observe(pattern_id, pattern, fields, n)`` fed every hit's
        #: extracted variable values — stream mode plugs its
        #: :class:`~repro.core.streaming.ValueDriftTracker` in here
        self.field_tracker = field_tracker

    def run(self, ctx: ServiceBatchContext) -> None:
        rtg = self.rtg
        tracker = self.field_tracker
        parser = rtg.parser_for(ctx.service)
        lane = rtg.fastpath if rtg.config.enable_fastpath else None
        example_cap = rtg.db.max_examples
        counts, from_cache = ctx.counts, ctx.from_cache
        scanned = ctx.scanned
        hits: list = [None] * len(scanned)
        if len(parser) > 0:
            # recurring messages (the ones the scan cache served) go
            # through the cross-batch match cache — the only ones worth
            # its signature cost; everything else is matched as one
            # batch, where ``match_many`` computes each distinct token
            # signature once, so in-batch duplicates stop re-walking the
            # pattern set even with the fast lane disabled
            fresh: list[ScannedMessage] = []
            fresh_at: list[int] = []
            for i, msg in enumerate(scanned):
                if from_cache is not None and from_cache[i]:
                    hits[i] = lane.match(ctx.service, parser, msg)
                else:
                    fresh.append(msg)
                    fresh_at.append(i)
            if fresh:
                for i, hit in zip(fresh_at, parser.match_many(fresh)):
                    hits[i] = hit
                ctx.parse_frontiers.extend(parser.last_frontiers)
        for i, msg in enumerate(scanned):
            n = 1 if counts is None else counts[i]
            hit = hits[i]
            if hit is None:
                ctx.unmatched.append(msg)
                ctx.unmatched_counts.append(n)
            else:
                pid = hit.pattern.id
                ctx.match_counts[pid] = ctx.match_counts.get(pid, 0) + n
                if tracker is not None:
                    tracker.observe(pid, hit.pattern, hit.fields, n)
                examples = ctx.match_examples.setdefault(pid, [])
                # accumulate only what the DB can store: the first
                # `max_examples` distinct originals
                if len(examples) < example_cap and msg.original not in examples:
                    examples.append(msg.original)


class LengthPartitionStage(Stage):
    """Second partitioning: group unmatched messages by token count.

    "Only token sets of the same length are compared in the same
    analysis trie" (paper §III).
    """

    name = "partition_length"

    def run(self, ctx: ServiceBatchContext) -> None:
        for msg, n in zip(ctx.unmatched, ctx.unmatched_counts):
            msgs, ns = ctx.by_length.setdefault(msg.token_count(), ([], []))
            msgs.append(msg)
            ns.append(n)


class AnalyzeStage(Stage):
    """Absorb each length partition into the evolving analysis state.

    The mining itself lives in
    :class:`repro.analyzer.evolving.EvolvingAnalyzer` — one instance
    (wrapping one reference or compiled analyser, per
    :attr:`AnalyzerConfig.backend`) serves every partition of every
    batch, its trie scratch reset and reused across flushes.  Batch mode
    (*deferred* False, the default) absorbs and flushes immediately:
    every partition is mined within its own batch, exactly the paper's
    workflow.  Stream mode constructs the stage *deferred*: absorption
    still happens per micro-batch, but mining waits until the driver
    calls :meth:`flush_into`, so evidence accumulates across
    micro-batches in the bounded evolving trie.
    """

    name = "analyze"

    def __init__(self, rtg: "SequenceRTG", deferred: bool = False) -> None:
        super().__init__(rtg)
        self.deferred = deferred
        bound = rtg.config.streaming.max_partition_pending if deferred else 0
        self.evolving = EvolvingAnalyzer(
            rtg.config.analyzer, max_partition_pending=bound
        )

    def run(self, ctx: ServiceBatchContext) -> None:
        evolving = self.evolving
        weighted = ctx.counts is not None
        for length, (partition, partition_counts) in sorted(ctx.by_length.items()):
            evolving.absorb(
                ctx.service,
                length,
                partition,
                counts=partition_counts if weighted else None,
            )
            if not self.deferred:
                patterns, n_nodes = evolving.flush_partition(ctx.service, length)
                self._record(ctx, patterns, n_nodes)

    def flush_into(self, ctx: ServiceBatchContext) -> None:
        """Mine everything pending for ``ctx.service`` into *ctx*.

        The deferred half of the stage: the stream driver builds an
        empty context per pending service and runs this in place of
        ``run``, then hands the context to the persist stage exactly as
        a batch would.
        """
        for patterns, n_nodes in self.evolving.flush_service(ctx.service):
            self._record(ctx, patterns, n_nodes)

    def _record(
        self, ctx: ServiceBatchContext, patterns: list[Pattern], n_nodes: int
    ) -> None:
        ctx.trie_node_sizes.append(n_nodes)
        ctx.max_trie_nodes = max(ctx.max_trie_nodes, n_nodes)
        for pattern in patterns:
            pattern.service = ctx.service
            ctx.discovered.append(pattern)


class PersistStage(Stage):
    """Write the batch's outcome: match statistics, then new patterns.

    "The newly found patterns are eventually saved in the database for
    comparison against subsequent batches and exporting" (paper §III).
    The save threshold applies here; everything for one service commits
    as a single transaction.  Worker processes substitute
    :class:`repro.core.parallel.DeltaPersistStage`, which targets the
    worker's private database and accumulates the delta reply.
    """

    name = "persist"

    def run(self, ctx: ServiceBatchContext) -> None:
        rtg = self.rtg
        db = rtg.db
        parser = rtg.parser_for(ctx.service)
        threshold = rtg.config.save_threshold
        with db.transaction():
            db.record_matches(ctx.match_counts, now=ctx.now)
            for pid, examples in ctx.match_examples.items():
                for example in examples:
                    db.add_example(pid, example)
            for pattern in ctx.discovered:
                if pattern.support < threshold:
                    ctx.n_below_threshold += 1
                    continue
                db.upsert(pattern, now=ctx.now)
                # in-place extension; the parser's version bump
                # invalidates this service's match cache
                parser.add_pattern(pattern)
                ctx.new_patterns.append(pattern)


# ----------------------------------------------------------------------
# Observers
# ----------------------------------------------------------------------

class StageObserver:
    """Instrumentation hooks around the engine's execution.

    Subclass and override what you need; all hooks default to no-ops.
    One batch produces ``on_batch_start``, then for every service group
    a paired ``on_stage_start``/``on_stage_end`` per stage in workflow
    order, then ``on_batch_end`` — the single place per-batch telemetry
    is folded into the :class:`BatchResult`.
    """

    def on_batch_start(self, result: BatchResult) -> None:
        """Called once before any stage runs."""

    def on_stage_start(self, stage: str, ctx: ServiceBatchContext) -> None:
        """Called immediately before *stage* runs on *ctx*."""

    def on_stage_end(self, stage: str, ctx: ServiceBatchContext) -> None:
        """Called immediately after *stage* ran on *ctx*."""

    def on_batch_end(self, result: BatchResult) -> None:
        """Called once after the last stage; fill *result* here."""


class TimingObserver(StageObserver):
    """Per-stage wall-clock timings → ``BatchResult.timings``.

    Replaces the pipeline's inline ``StageTimer`` blocks: the timer is
    reset per batch and driven purely by the stage events, so its
    per-stage counts equal the number of stage executions.
    """

    def __init__(self, timer: StageTimer | None = None) -> None:
        self.timer = timer or StageTimer()

    def on_batch_start(self, result: BatchResult) -> None:
        self.timer.reset()

    def on_stage_start(self, stage: str, ctx: ServiceBatchContext) -> None:
        self.timer.begin(stage)

    def on_stage_end(self, stage: str, ctx: ServiceBatchContext) -> None:
        self.timer.end(stage)

    def on_batch_end(self, result: BatchResult) -> None:
        result.timings = self.timer.report()


class FastPathObserver(StageObserver):
    """Fast-lane cache effectiveness → ``BatchResult.cache``.

    Snapshots the lane's cumulative counters at batch start and
    publishes the per-batch delta; a counter that first appears
    mid-batch deltas against zero instead of raising.
    """

    def __init__(self, lane: FastPath) -> None:
        self.lane = lane
        self._before: dict[str, int] = {}

    def on_batch_start(self, result: BatchResult) -> None:
        self._before = self.lane.snapshot()

    def on_batch_end(self, result: BatchResult) -> None:
        result.cache = FastPath.snapshot_delta(self._before, self.lane.snapshot())


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------

def default_observers(rtg: "SequenceRTG") -> list[StageObserver]:
    """The serial driver's instrumentation: timings, cache deltas when
    the fast lane is enabled, then metrics — last, because the metrics
    observer folds ``result.timings``/``result.cache`` the earlier
    observers publish at batch end."""
    observers: list[StageObserver] = [TimingObserver()]
    if rtg.config.enable_fastpath:
        observers.append(FastPathObserver(rtg.fastpath))
    if rtg.config.enable_metrics:
        # imported here: repro.obs.observer subclasses this module's
        # StageObserver, so a top-level import would be circular
        from repro.obs.observer import MetricsObserver

        observers.append(
            MetricsObserver(
                rtg.metrics,
                db=rtg.db,
                scan_backend=rtg.scanner.backend_name,
                parse_backend=rtg.config.parser.backend,
                analyze_backend=rtg.config.analyzer.backend,
            )
        )
    return observers


class MiningEngine:
    """Drive one batch through the staged Fig. 2 workflow.

    Partitions the batch by service ("a first partitioning of the data
    which groups the log records into subsets by service") and runs
    every group through scan → parse → partition-by-length → analyse →
    persist, notifying *observers* around each stage.  *persist*
    substitutes the persistence seam — the only stage the execution
    paths (serial, cold shard, warm worker) differ in.

    In *deferred-analysis* mode (stream execution) the analyze stage
    only absorbs into the engine's evolving state; :meth:`flush` later
    mines everything pending and persists it through the same persist
    seam and observer events a batch would use.
    """

    def __init__(
        self,
        rtg: "SequenceRTG",
        observers: list[StageObserver] | None = None,
        persist: PersistStage | None = None,
        deferred_analysis: bool = False,
        field_tracker=None,
    ) -> None:
        self.rtg = rtg
        self.deferred_analysis = deferred_analysis
        self.field_tracker = field_tracker
        self.observers: list[StageObserver] = (
            default_observers(rtg) if observers is None else list(observers)
        )
        self.analyze_stage = AnalyzeStage(rtg, deferred=deferred_analysis)
        self.persist_stage = persist or PersistStage(rtg)
        self.stages: list[Stage] = [
            ScanStage(rtg),
            ParseStage(rtg, field_tracker=field_tracker),
            LengthPartitionStage(rtg),
            self.analyze_stage,
            self.persist_stage,
        ]

    def run(
        self, records: list[LogRecord], now: datetime | None = None
    ) -> BatchResult:
        """Execute the workflow over one batch of records."""
        result = BatchResult(n_records=len(records))
        observers = self.observers
        for observer in observers:
            observer.on_batch_start(result)

        by_service: dict[str, list[LogRecord]] = {}
        for record in records:
            by_service.setdefault(record.service, []).append(record)
        result.n_services = len(by_service)

        for service, group in by_service.items():
            ctx = ServiceBatchContext(service=service, records=group, now=now)
            for stage in self.stages:
                for observer in observers:
                    observer.on_stage_start(stage.name, ctx)
                stage.run(ctx)
                for observer in observers:
                    observer.on_stage_end(stage.name, ctx)
            result.n_matched += sum(ctx.match_counts.values())
            result.n_unmatched += sum(ctx.unmatched_counts)
            result.n_partitions += len(ctx.by_length)
            result.n_below_threshold += ctx.n_below_threshold
            result.max_trie_nodes = max(result.max_trie_nodes, ctx.max_trie_nodes)
            result.n_new_patterns += len(ctx.new_patterns)
            result.new_patterns.extend(ctx.new_patterns)

        for observer in observers:
            observer.on_batch_end(result)
        return result

    def flush(self, now: datetime | None = None) -> BatchResult:
        """Mine and persist everything pending in the evolving state.

        The deferred half of the stream workflow: for every service with
        pending partitions an empty :class:`ServiceBatchContext` is
        built, the analyze stage's :meth:`AnalyzeStage.flush_into` mines
        the service's accumulated evidence into it, and the persist
        stage writes it out — wrapped in the same stage observer events
        a batch would emit, so flush latency and new-pattern counts land
        in the same histograms/counters.  A no-op (empty result) when
        nothing is pending; harmless in batch mode, where the evolving
        state is always drained.
        """
        result = BatchResult()
        evolving = self.analyze_stage.evolving
        services = evolving.services()
        if not services:
            return result
        observers = self.observers
        for observer in observers:
            observer.on_batch_start(result)
        result.n_services = len(services)
        analyze = self.analyze_stage
        persist = self.persist_stage
        for service in services:
            ctx = ServiceBatchContext(service=service, records=[], now=now)
            for stage, step in ((analyze, analyze.flush_into), (persist, persist.run)):
                for observer in observers:
                    observer.on_stage_start(stage.name, ctx)
                step(ctx)
                for observer in observers:
                    observer.on_stage_end(stage.name, ctx)
            result.n_partitions += len(ctx.trie_node_sizes)
            result.n_below_threshold += ctx.n_below_threshold
            result.max_trie_nodes = max(result.max_trie_nodes, ctx.max_trie_nodes)
            result.n_new_patterns += len(ctx.new_patterns)
            result.new_patterns.extend(ctx.new_patterns)
        for observer in observers:
            observer.on_batch_end(result)
        return result


# ----------------------------------------------------------------------
# Stream driving
# ----------------------------------------------------------------------

def drive_stream(miner, batches, now: datetime | None = None):
    """Run ``analyze_by_service`` for every batch; yield the results.

    The one stream driver behind every front end's ``process_stream``:
    *miner* is anything with an ``analyze_by_service(records, now=...)``
    — the serial :class:`~repro.core.pipeline.SequenceRTG` or either
    worker pool — and *batches* is any iterable of record lists,
    typically :meth:`repro.core.ingest.StreamIngester.batches` or
    ``batches_pipelined``.

    If *batches* is a generator (the pipelined ingester is), its
    ``close`` runs when this driver is closed or abandoned mid-stream —
    including when the consumer of *this* generator raises — so the
    ingester's cleanup (reader-thread join, queue drain) is deterministic
    rather than deferred to garbage collection.
    """
    try:
        for batch in batches:
            yield miner.analyze_by_service(batch, now=now)
    finally:
        close = getattr(batches, "close", None)
        if close is not None:
            close()

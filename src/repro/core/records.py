"""Input record model.

"Each item in the stream is simply expected to be using a JSON format
with only two fields: service (the source system) from where the message
originated and the unaltered log message." (paper §III)
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LogRecord"]


@dataclass(slots=True, frozen=True)
class LogRecord:
    """One item of the composite input stream."""

    service: str
    message: str

    def to_json_dict(self) -> dict[str, str]:
        return {"service": self.service, "message": self.message}

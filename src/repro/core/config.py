"""Sequence-RTG configuration.

Batch size is the knob the paper discusses at length: it must balance
"having enough data to perform the comparison steps of the analysis and
preventing a memory overload caused by too many messages" (§III), and
the evaluation settles on 100,000 messages for production at CC-IN2P3
(§IV, Fig. 5 discussion).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analyzer.analyzer import AnalyzerConfig
from repro.parser.parser import ParserConfig
from repro.scanner.scanner import ScannerConfig

__all__ = ["RTGConfig", "StreamingConfig", "EXECUTION_MODES"]

#: Recognised values of :attr:`RTGConfig.mode`.
EXECUTION_MODES = ("batch", "stream")


@dataclass(slots=True)
class StreamingConfig:
    """Knobs of the ``stream`` execution mode (:mod:`repro.core.streaming`).

    Stream mode trades the paper's batch barrier for bounded per-message
    latency: records are analysed in micro-batches against the known
    pattern set immediately, while unmatched messages accumulate in the
    engine's evolving analysis state and are mined on *flush*.  The
    flush policy below decides how much evidence the miner waits for —
    batch mode is the degenerate case "flush after every batch".
    """

    #: records per micro-batch (1 = strictly per-message processing);
    #: the micro-batch is the unit of scan/parse work and of the
    #: per-message latency histogram
    micro_batch_size: int = 256
    #: seconds a partial micro-batch may wait for more records before
    #: :meth:`~repro.core.streaming.StreamDriver.poll` processes it
    micro_batch_timeout_s: float = 0.5
    #: mine the pending partitions once this many distinct unmatched
    #: messages have accumulated across all services
    flush_pending: int = 2048
    #: mine at least this often (wall-clock seconds between flushes)
    flush_interval_s: float = 30.0
    #: bound on one (service, token-count) partition's pending distinct
    #: messages — the evolving-trie memory bound; reaching it forces a
    #: flush (0 = unbounded)
    max_partition_pending: int = 8192
    #: evict patterns whose ``last_matched`` date is older than this many
    #: days at flush time (0 = no TTL eviction)
    pattern_ttl_days: float = 0.0
    #: drift maintenance: retire stored patterns subsumed by a newly
    #: discovered, more general pattern (their counts/examples fold into
    #: the general one)
    drift_merge: bool = True
    #: drift maintenance: fold a pattern variable observed with exactly
    #: one distinct value over many matches back to a constant
    drift_split: bool = True
    #: matches a variable must accumulate (with a single distinct value)
    #: before a drift split folds it
    split_min_matches: int = 128
    #: distinct values tracked per pattern variable before the tracker
    #: gives up on it (mirrors the analysis trie's VALUE_CAP)
    drift_max_values: int = 8
    #: per-message latency samples kept for the driver's quantile report
    latency_window: int = 8192

    def __post_init__(self) -> None:
        if self.micro_batch_size < 1:
            raise ValueError(
                f"micro_batch_size must be >= 1, got {self.micro_batch_size}"
            )
        if self.micro_batch_timeout_s <= 0:
            raise ValueError(
                "micro_batch_timeout_s must be positive, got "
                f"{self.micro_batch_timeout_s}"
            )
        if self.flush_pending < 1:
            raise ValueError(
                f"flush_pending must be >= 1, got {self.flush_pending}"
            )
        if self.flush_interval_s <= 0:
            raise ValueError(
                f"flush_interval_s must be positive, got {self.flush_interval_s}"
            )
        if self.max_partition_pending < 0:
            raise ValueError(
                "max_partition_pending must be >= 0, got "
                f"{self.max_partition_pending}"
            )
        if self.pattern_ttl_days < 0:
            raise ValueError(
                f"pattern_ttl_days must be >= 0, got {self.pattern_ttl_days}"
            )
        if self.split_min_matches < 1:
            raise ValueError(
                f"split_min_matches must be >= 1, got {self.split_min_matches}"
            )
        if self.drift_max_values < 1:
            raise ValueError(
                f"drift_max_values must be >= 1, got {self.drift_max_values}"
            )
        if self.latency_window < 1:
            raise ValueError(
                f"latency_window must be >= 1, got {self.latency_window}"
            )


@dataclass(slots=True)
class RTGConfig:
    """All Sequence-RTG knobs in one place."""

    #: messages accumulated before an analysis run is triggered
    batch_size: int = 100_000
    #: patterns supported by fewer messages than this are considered
    #: useless and not saved (§IV "Limitations", save threshold)
    save_threshold: int = 1
    #: maximum number of unique examples stored per pattern
    max_examples: int = 3
    #: export-time filters: only patterns matched at least this often ...
    export_min_count: int = 1
    #: ... with complexity at most this are exported for review
    export_max_complexity: float = 1.0
    #: duplicate-aware fast lane (batch dedup + scan/match caching); off
    #: reproduces the naive per-occurrence hot path — the equivalence
    #: tests assert both lanes mine byte-identical results
    enable_fastpath: bool = True
    #: entries kept in the cross-batch ``(service, message)`` scan cache
    #: (0 disables the cache; batch dedup still applies)
    scan_cache_size: int = 8192
    #: entries kept per service in the token-signature match cache
    #: (0 disables the cache; batch dedup still applies)
    match_cache_size: int = 8192
    #: runtime metrics (:mod:`repro.obs`): per-stage latency histograms,
    #: match/fast-lane counters and pattern-DB gauges published through a
    #: :class:`~repro.obs.metrics.MetricsRegistry` on every execution
    #: path; off removes the observer entirely for overhead comparisons
    #: (``benchmarks/smoke_obs.py`` gates the cost of leaving it on)
    enable_metrics: bool = True
    #: worker processes for the persistent parallel engine
    #: (:class:`repro.core.parallel.PersistentParallelSequenceRTG`);
    #: 0 means one per available CPU minus one for the parent
    pool_workers: int = 0
    #: batches the pipelined ingester's reader thread keeps ready ahead
    #: of analysis (:meth:`repro.core.ingest.StreamIngester.batches_pipelined`)
    ingest_prefetch: int = 2
    #: full-durability pattern DB: keep SQLite's default rollback journal
    #: and ``synchronous=FULL`` (fsync per commit).  Off by default — the
    #: DB opens in WAL mode with ``synchronous=NORMAL``, which keeps the
    #: database consistent across crashes (the last batch's counts may
    #: need re-mining) but stops ``record_matches``/persist paying an
    #: fsync per transaction on the hot path
    db_durable: bool = False
    #: execution mode: ``"batch"`` runs the paper's workflow (analysis
    #: after every batch); ``"stream"`` defers analysis into the
    #: engine's evolving state and flushes it per the
    #: :class:`StreamingConfig` policy — serial front ends only (the
    #: worker pools refuse stream mode)
    mode: str = "batch"
    streaming: StreamingConfig = field(default_factory=StreamingConfig)
    scanner: ScannerConfig = field(default_factory=ScannerConfig)
    parser: ParserConfig = field(default_factory=ParserConfig)
    analyzer: AnalyzerConfig = field(default_factory=AnalyzerConfig)

    def __post_init__(self) -> None:
        if self.mode not in EXECUTION_MODES:
            raise ValueError(
                f"mode must be one of {EXECUTION_MODES}, got {self.mode!r}"
            )
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.save_threshold < 1:
            raise ValueError(
                f"save_threshold must be >= 1, got {self.save_threshold}"
            )
        if not (0.0 <= self.export_max_complexity <= 1.0):
            raise ValueError(
                "export_max_complexity must be within [0, 1], got "
                f"{self.export_max_complexity}"
            )
        if self.scan_cache_size < 0:
            raise ValueError(
                f"scan_cache_size must be >= 0, got {self.scan_cache_size}"
            )
        if self.match_cache_size < 0:
            raise ValueError(
                f"match_cache_size must be >= 0, got {self.match_cache_size}"
            )
        if self.pool_workers < 0:
            raise ValueError(
                f"pool_workers must be >= 0, got {self.pool_workers}"
            )
        if self.ingest_prefetch < 1:
            raise ValueError(
                f"ingest_prefetch must be >= 1, got {self.ingest_prefetch}"
            )

"""Sequence-RTG configuration.

Batch size is the knob the paper discusses at length: it must balance
"having enough data to perform the comparison steps of the analysis and
preventing a memory overload caused by too many messages" (§III), and
the evaluation settles on 100,000 messages for production at CC-IN2P3
(§IV, Fig. 5 discussion).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analyzer.analyzer import AnalyzerConfig
from repro.parser.parser import ParserConfig
from repro.scanner.scanner import ScannerConfig

__all__ = ["RTGConfig"]


@dataclass(slots=True)
class RTGConfig:
    """All Sequence-RTG knobs in one place."""

    #: messages accumulated before an analysis run is triggered
    batch_size: int = 100_000
    #: patterns supported by fewer messages than this are considered
    #: useless and not saved (§IV "Limitations", save threshold)
    save_threshold: int = 1
    #: maximum number of unique examples stored per pattern
    max_examples: int = 3
    #: export-time filters: only patterns matched at least this often ...
    export_min_count: int = 1
    #: ... with complexity at most this are exported for review
    export_max_complexity: float = 1.0
    #: duplicate-aware fast lane (batch dedup + scan/match caching); off
    #: reproduces the naive per-occurrence hot path — the equivalence
    #: tests assert both lanes mine byte-identical results
    enable_fastpath: bool = True
    #: entries kept in the cross-batch ``(service, message)`` scan cache
    #: (0 disables the cache; batch dedup still applies)
    scan_cache_size: int = 8192
    #: entries kept per service in the token-signature match cache
    #: (0 disables the cache; batch dedup still applies)
    match_cache_size: int = 8192
    #: runtime metrics (:mod:`repro.obs`): per-stage latency histograms,
    #: match/fast-lane counters and pattern-DB gauges published through a
    #: :class:`~repro.obs.metrics.MetricsRegistry` on every execution
    #: path; off removes the observer entirely for overhead comparisons
    #: (``benchmarks/smoke_obs.py`` gates the cost of leaving it on)
    enable_metrics: bool = True
    #: worker processes for the persistent parallel engine
    #: (:class:`repro.core.parallel.PersistentParallelSequenceRTG`);
    #: 0 means one per available CPU minus one for the parent
    pool_workers: int = 0
    #: batches the pipelined ingester's reader thread keeps ready ahead
    #: of analysis (:meth:`repro.core.ingest.StreamIngester.batches_pipelined`)
    ingest_prefetch: int = 2
    #: full-durability pattern DB: keep SQLite's default rollback journal
    #: and ``synchronous=FULL`` (fsync per commit).  Off by default — the
    #: DB opens in WAL mode with ``synchronous=NORMAL``, which keeps the
    #: database consistent across crashes (the last batch's counts may
    #: need re-mining) but stops ``record_matches``/persist paying an
    #: fsync per transaction on the hot path
    db_durable: bool = False
    scanner: ScannerConfig = field(default_factory=ScannerConfig)
    parser: ParserConfig = field(default_factory=ParserConfig)
    analyzer: AnalyzerConfig = field(default_factory=AnalyzerConfig)

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.save_threshold < 1:
            raise ValueError(
                f"save_threshold must be >= 1, got {self.save_threshold}"
            )
        if not (0.0 <= self.export_max_complexity <= 1.0):
            raise ValueError(
                "export_max_complexity must be within [0, 1], got "
                f"{self.export_max_complexity}"
            )
        if self.scan_cache_size < 0:
            raise ValueError(
                f"scan_cache_size must be >= 0, got {self.scan_cache_size}"
            )
        if self.match_cache_size < 0:
            raise ValueError(
                f"match_cache_size must be >= 0, got {self.match_cache_size}"
            )
        if self.pool_workers < 0:
            raise ValueError(
                f"pool_workers must be >= 0, got {self.pool_workers}"
            )
        if self.ingest_prefetch < 1:
            raise ValueError(
                f"ingest_prefetch must be >= 1, got {self.ingest_prefetch}"
            )

"""Scale-out ``AnalyzeByService`` across processes.

"If the capacity of Sequence-RTG needed to be scaled up, the messages
could be divided simply by sending groups of services to any number
instances of Sequence-RTG, thanks to the newly introduced
AnalyzeByService method.  In this case each instance could have its own
database as there is no crossover with patterns between different
services." (paper §IV)

Every worker runs the exact same staged
:class:`~repro.core.engine.MiningEngine` as the serial front end — the
only substitution is the persistence seam: :class:`DeltaPersistStage`
writes the worker's *private* database and accumulates the delta reply
(new patterns, match-count diffs) the parent merges into the shared
database.  Two pool front ends drive that engine:

* :class:`PersistentParallelSequenceRTG` — the production engine.  A
  pool of long-lived worker processes, each owning a private
  :class:`~repro.core.pipeline.SequenceRTG` (own in-memory pattern
  database, warm fast-lane caches, incrementally extended parsers) for a
  *sticky* set of services: ``crc32(service) % n_workers`` never changes
  between batches, so a worker keeps serving the same services for the
  lifetime of the pool.  Per batch the parent ships a worker only its
  shard's records plus the patterns that are *new to it* since its last
  sync — tracked with a monotone cursor into a
  :class:`~repro.core.fastpath.PatternJournal` — never the full known
  set.  A worker that dies is respawned and its service patterns are
  replayed from the shared database, which by construction holds
  everything the dead worker had ever reported.

* :class:`ParallelSequenceRTG` — the original per-batch pool, retained
  as the cold baseline the benchmarks compare against: every batch pays
  process spawn, a full re-ship of all known patterns of the shard's
  services, a from-scratch parser rebuild and stone-cold caches.

Because pattern ids are content-derived SHA1s and sharding is
service-disjoint, the merged result of either front end is *identical*
to a serial run over the same batches — pattern ids, supports, match
counts and stored examples — a property the test suite asserts for
multi-batch runs and for runs with induced worker crashes.
"""

from __future__ import annotations

import multiprocessing
import pickle
import zlib
from dataclasses import dataclass, field
from datetime import datetime

from repro.analyzer.pattern import Pattern
from repro.core.config import RTGConfig
from repro.core.engine import (
    BatchResult,
    MiningEngine,
    PersistStage,
    ServiceBatchContext,
    StageObserver,
    drive_stream,
)
from repro.core.fastpath import PatternJournal
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.core.records import LogRecord
from repro.obs.metrics import MetricsRegistry, snapshot_to_dict
from repro.obs.observer import METRIC_HELP, MetricsObserver, fold_batch_result

__all__ = [
    "ParallelSequenceRTG",
    "PersistentParallelSequenceRTG",
    "DeltaPersistStage",
    "shard_records",
    "route_service",
]


def route_service(service: str, n_shards: int) -> int:
    """Sticky shard index of *service* for an *n_shards*-way pool.

    crc32 rather than hash(): stable across interpreter runs and worker
    respawns, so a service is owned by the same shard for the lifetime
    of a deployment (and a re-executed one shards identically).
    """
    return zlib.crc32(service.encode()) % n_shards


def shard_records(
    records: list[LogRecord], n_shards: int
) -> list[list[LogRecord]]:
    """Partition records into service-disjoint shards.

    All records of one service land in the same shard (stable hash of
    the service name), so no two workers ever mine the same service.
    """
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    shards: list[list[LogRecord]] = [[] for _ in range(n_shards)]
    for record in records:
        shards[route_service(record.service, n_shards)].append(record)
    return shards


@dataclass(slots=True)
class _ShardTask:
    """Everything one cold-pool worker needs (picklable)."""

    records: list[LogRecord]
    config: RTGConfig
    known_patterns: list[dict]  # Pattern.to_dict() of relevant services
    now: datetime | None = None
    worker: int | None = None  # ``worker`` metric label of the shard


@dataclass(slots=True)
class _ShardOutcome:
    """Per-shard deltas a worker reports back for merging."""

    n_matched: int
    n_unmatched: int
    n_partitions: int
    n_below_threshold: int
    max_trie_nodes: int
    new_patterns: list[dict]
    match_counts: dict[str, int]
    match_examples: dict[str, list[str]]
    cache: dict[str, int]
    timings: dict[str, float] = field(default_factory=dict)
    #: the worker registry's per-batch snapshot delta (stage latency
    #: histograms, per-service counters), merged into the parent's
    #: registry — see :meth:`repro.obs.metrics.MetricsRegistry.merge`
    metrics: dict = field(default_factory=dict)


class DeltaPersistStage(PersistStage):
    """Worker-side persistence seam of the staged engine.

    Persists the service's batch outcome into the worker's *private*
    database exactly like the serial :class:`PersistStage`, then diffs
    that service's rows against what was already reported to (or
    received from) the parent: rows not in *reported* are new patterns,
    known rows whose count grew report the delta as matches.
    *reported* is advanced in place, so a persistent worker reports
    each increment exactly once across its lifetime.  Only services
    touched by the batch are ever diffed — nothing else can have
    changed.
    """

    name = "persist"

    def __init__(self, rtg: SequenceRTG, reported: dict[str, int]) -> None:
        super().__init__(rtg)
        self.reported = reported
        self.new_patterns: list[dict] = []
        self.match_counts: dict[str, int] = {}
        self.match_examples: dict[str, list[str]] = {}

    def reset(self) -> None:
        """Start a fresh per-batch delta (call before each engine run)."""
        self.new_patterns = []
        self.match_counts = {}
        self.match_examples = {}

    def run(self, ctx: ServiceBatchContext) -> None:
        super().run(ctx)
        reported = self.reported
        for row in self.rtg.db.rows(service=ctx.service):
            previous = reported.get(row.id)
            if previous is None:
                self.new_patterns.append(row.to_pattern().to_dict())
                reported[row.id] = row.match_count
            elif row.match_count > previous:
                self.match_counts[row.id] = row.match_count - previous
                self.match_examples[row.id] = row.examples
                reported[row.id] = row.match_count

    def outcome(self, batch: BatchResult) -> _ShardOutcome:
        """The delta reply for the batch *batch* summarised."""
        return _ShardOutcome(
            n_matched=batch.n_matched,
            n_unmatched=batch.n_unmatched,
            n_partitions=batch.n_partitions,
            n_below_threshold=batch.n_below_threshold,
            max_trie_nodes=batch.max_trie_nodes,
            new_patterns=self.new_patterns,
            match_counts=self.match_counts,
            match_examples=self.match_examples,
            cache=batch.cache,
            timings=batch.timings,
        )


def _worker_engine(
    config: RTGConfig, worker: int | None = None
) -> tuple[SequenceRTG, DeltaPersistStage, MiningEngine]:
    """One worker's private miner on the shared staged engine.

    The same :class:`MiningEngine` the serial path runs — same stages,
    same default observers — with :class:`DeltaPersistStage` substituted
    as the persistence seam.  The worker's metric registry stamps every
    sample with a ``worker`` label and records stage-level series only
    (``batch_level=False``): batch aggregates — matched fraction, fast
    lane, pool and database gauges — are folded exactly once, parent
    side, from the merged :class:`BatchResult`.
    """
    metrics = None
    if config.enable_metrics and worker is not None:
        metrics = MetricsRegistry(const_labels={"worker": str(worker)})
    rtg = SequenceRTG(
        db=PatternDB(max_examples=config.max_examples, durable=config.db_durable),
        config=config,
        metrics=metrics,
    )
    persist = DeltaPersistStage(rtg, reported={})
    engine = MiningEngine(rtg, persist=persist)
    for observer in engine.observers:
        if isinstance(observer, MetricsObserver):
            observer.batch_level = False
            observer.db = None
    return rtg, persist, engine


def _analyze_shard(task: _ShardTask) -> _ShardOutcome:
    """Run one throwaway staged engine over a service shard."""
    rtg, persist, engine = _worker_engine(task.config, worker=task.worker)
    for pattern_dict in task.known_patterns:
        pattern = Pattern.from_dict(pattern_dict)
        rtg.db.upsert(pattern)
        persist.reported[pattern.id] = pattern.support
    outcome = persist.outcome(engine.run(task.records, now=task.now))
    # a fresh process starts from an empty registry, so the cumulative
    # snapshot *is* the batch delta
    outcome.metrics = rtg.metrics.snapshot()
    return outcome


class _DisjointMerge:
    """Guard that every pattern id is reported by exactly one shard.

    Service-disjoint sharding guarantees disjoint pattern ids across
    shards; if routing ever broke, summing the shards' new-pattern
    supports and match deltas would silently double count.  Raise
    instead.
    """

    __slots__ = ("_seen",)

    def __init__(self) -> None:
        self._seen: dict[str, int] = {}

    def claim(self, pattern_id: str, shard: int) -> None:
        owner = self._seen.setdefault(pattern_id, shard)
        if owner != shard:
            raise RuntimeError(
                "service-disjoint sharding violated: pattern "
                f"{pattern_id} reported by shards {owner} and {shard}; "
                "merging would double-count its support"
            )


class ParallelSequenceRTG:
    """Per-batch-pool front end (the cold baseline).

    Semantically equivalent to :class:`SequenceRTG.analyze_by_service`
    over the same batch, but every call builds the process pool anew and
    re-ships the full known pattern set of each shard's services.  Kept
    for comparison benchmarks; production use should prefer
    :class:`PersistentParallelSequenceRTG`.
    """

    def __init__(
        self,
        db: PatternDB | None = None,
        config: RTGConfig | None = None,
        n_workers: int | None = None,
    ) -> None:
        self.config = config or RTGConfig()
        if self.config.mode != "batch":
            raise ValueError(
                "worker pools run batch mode only; stream mode is served "
                f"by the serial StreamDriver (got mode={self.config.mode!r})"
            )
        self.db = db or PatternDB(
            max_examples=self.config.max_examples,
            durable=self.config.db_durable,
        )
        self.n_workers = n_workers or max(1, multiprocessing.cpu_count() - 1)
        #: measure the per-batch pattern re-ship (pickled bytes of the
        #: known-pattern payloads) into ``result.pool`` — off by default
        #: so timing runs don't pay a second serialisation
        self.track_sync_bytes = False
        #: shared runtime metrics registry: the in-process instance
        #: writes into it directly; worker deltas are merged after every
        #: multi-shard batch
        self.metrics = MetricsRegistry()
        # persistent in-process instance over the shared database: runs
        # single-shard batches directly (parser and fast-lane caches stay
        # warm across batches) and absorbs pool-merged patterns in place
        self._local = SequenceRTG(
            db=self.db, config=self.config, metrics=self.metrics
        )

    # ------------------------------------------------------------------
    def _known_for(self, services: set[str]) -> list[dict]:
        out: list[dict] = []
        for service in services:
            for pattern in self.db.load_service(service):
                out.append(pattern.to_dict())
        return out

    def analyze_by_service(
        self, records: list[LogRecord], now: datetime | None = None
    ) -> BatchResult:
        """Analyse one batch across a fresh worker pool and merge results."""
        shards = [s for s in shard_records(records, self.n_workers) if s]
        if len(shards) <= 1:
            # degenerate case: run in-process on the shared database via
            # the persistent instance — no shipping patterns to a worker,
            # no rebuilding parsers from scratch, warm caches throughout
            return self._local.analyze_by_service(records, now=now)

        tasks = [
            _ShardTask(
                records=shard,
                config=self.config,
                known_patterns=self._known_for({r.service for r in shard}),
                now=now,
                worker=index,
            )
            for index, shard in enumerate(shards)
        ]
        metrics_before = (
            self.metrics.snapshot() if self.config.enable_metrics else None
        )
        with multiprocessing.Pool(processes=len(tasks)) as pool:
            outcomes = pool.map(_analyze_shard, tasks)

        result = BatchResult(n_records=len(records))
        result.n_services = len({r.service for r in records})
        result.pool = {
            "workers": len(tasks),
            "sync_patterns": sum(len(t.known_patterns) for t in tasks),
        }
        if self.track_sync_bytes:
            result.pool["sync_bytes"] = sum(
                len(pickle.dumps(t.known_patterns)) for t in tasks
            )
        guard = _DisjointMerge()
        for shard_index, outcome in enumerate(outcomes):
            result.n_matched += outcome.n_matched
            result.n_unmatched += outcome.n_unmatched
            result.n_partitions += outcome.n_partitions
            result.n_below_threshold += outcome.n_below_threshold
            result.max_trie_nodes = max(result.max_trie_nodes, outcome.max_trie_nodes)
            for key, value in outcome.cache.items():
                result.cache[key] = result.cache.get(key, 0) + value
            for key, value in outcome.timings.items():
                result.timings[key] = result.timings.get(key, 0.0) + value
            if outcome.metrics:
                self.metrics.merge(outcome.metrics)
            for pattern_dict in outcome.new_patterns:
                pattern = Pattern.from_dict(pattern_dict)
                guard.claim(pattern.id, shard_index)
                # upsert + in-place parser extension: the local instance
                # keeps serving without rebuilding its parsers
                self._local.add_known_pattern(pattern, now=now)
                result.n_new_patterns += 1
                result.new_patterns.append(pattern)
            for pid, n in outcome.match_counts.items():
                guard.claim(pid, shard_index)
                self.db.record_match(pid, n=n, now=now)
                for example in outcome.match_examples.get(pid, ()):
                    self.db.add_example(pid, example)
        if metrics_before is not None:
            fold_batch_result(self.metrics, result, db=self.db)
            result.metrics = snapshot_to_dict(
                MetricsRegistry.snapshot_delta(
                    metrics_before, self.metrics.snapshot()
                )
            )
        return result

    # ------------------------------------------------------------------
    def process_stream(self, batches, now: datetime | None = None):
        """Run ``analyze_by_service`` for every batch; yield results."""
        return drive_stream(self, batches, now=now)


# ----------------------------------------------------------------------
# Persistent worker pool
# ----------------------------------------------------------------------

def _worker_main(conn, config: RTGConfig, index: int | None = None) -> None:
    """Loop of one long-lived worker process.

    Owns a private staged engine (:func:`_worker_engine`) over an
    in-memory database for its sticky services.  Protocol (one pickled
    message per request):

    * ``("sync", patterns)`` — absorb pattern dicts into the private DB
      and parser (no reply).  Sent at spawn (replay from the shared DB)
      and never again for patterns this worker reported itself.
    * ``("batch", records, patterns, now)`` — absorb the delta
      *patterns*, analyse *records* stamped with *now*, reply with a
      :class:`_ShardOutcome` of deltas.  The outcome carries the
      worker registry's per-batch snapshot delta (the registry is
      long-lived here, unlike the cold pool's, so cumulative values
      must be diffed before shipping).
    * ``("stop",)`` — exit.
    """
    rtg, persist, engine = _worker_engine(config, worker=index)
    #: match_count already reported to (or received from) the parent
    reported = persist.reported

    def absorb(pattern_dicts: list[dict]) -> None:
        for pattern_dict in pattern_dicts:
            pattern = Pattern.from_dict(pattern_dict)
            rtg.add_known_pattern(pattern)
            reported[pattern.id] = reported.get(pattern.id, 0) + pattern.support

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if message[0] == "stop":
            break
        if message[0] == "sync":
            absorb(message[1])
            continue
        _, records, sync, now = message
        absorb(sync)
        persist.reset()
        metrics_before = rtg.metrics.snapshot()
        outcome = persist.outcome(engine.run(records, now=now))
        outcome.metrics = MetricsRegistry.snapshot_delta(
            metrics_before, rtg.metrics.snapshot()
        )
        try:
            conn.send(outcome)
        except (BrokenPipeError, OSError):
            break
    conn.close()


@dataclass(slots=True)
class _WorkerHandle:
    """Parent-side view of one worker process."""

    index: int
    process: multiprocessing.Process
    conn: object  # multiprocessing.Connection
    #: journal head this worker is synced to
    cursor: int
    #: services this worker has been sent (sticky-routing telemetry)
    services: set[str] = field(default_factory=set)


class _PoolTelemetry(StageObserver):
    """Per-batch pool counters → ``BatchResult.pool``.

    The parent feeds dispatch events in during the batch; spawn and
    seed counters are read from the engine's cumulative telemetry.
    Publishing through the :class:`StageObserver` channel keeps the
    pool's telemetry on the same path as the stage timings and cache
    deltas the in-worker engines report.
    """

    def __init__(self, telemetry: dict[str, int]) -> None:
        self._telemetry = telemetry
        self._spawns_before = 0
        self._respawns_before = 0
        self.workers = 0
        self.sync_patterns = 0
        self.sync_bytes = 0

    def on_batch_start(self, result: BatchResult) -> None:
        self._spawns_before = self._telemetry["spawns"]
        self._respawns_before = self._telemetry["respawns"]
        self.workers = 0
        self.sync_patterns = 0
        self.sync_bytes = 0

    def dispatched(self, sync_patterns: int, sync_bytes: int) -> None:
        """One shard dispatched with a delta-sync payload of this size."""
        self.workers += 1
        self.sync_patterns += sync_patterns
        self.sync_bytes += sync_bytes

    def on_batch_end(self, result: BatchResult) -> None:
        telemetry = self._telemetry
        result.pool = {
            "workers": self.workers,
            "spawns": telemetry["spawns"] - self._spawns_before,
            "respawns": telemetry["respawns"] - self._respawns_before,
            "sync_patterns": self.sync_patterns,
            "sync_bytes": self.sync_bytes,
            "seed_patterns": telemetry["seed_patterns"],
            "seed_bytes": telemetry["seed_bytes"],
        }


class PersistentParallelSequenceRTG:
    """Service-sharded Sequence-RTG over a persistent worker pool.

    The scale-out engine: workers live as long as the engine, own their
    services exclusively (stable crc32 routing) and keep everything warm
    between batches — pattern database, parse tries, scan/match caches.
    Per batch the parent ships each worker its shard's records plus the
    delta of patterns new to that worker since its last sync; workers
    reply with the same :class:`_ShardOutcome` deltas as the cold pool,
    which the parent merges into the shared database.  The merged output
    is identical to a serial run — ids, supports, match counts, examples.

    Use as a context manager (or call :meth:`close`); worker processes
    are daemons, so an unclosed engine cannot outlive the interpreter.

    Worker death is handled, not tolerated: a dead worker is respawned
    and its service patterns are replayed from the shared database,
    which holds everything the worker had ever reported — the replayed
    state is therefore exactly the dead worker's last merged state, and
    the interrupted shard is re-dispatched.

    Cumulative counters live in :attr:`telemetry`; per-batch values are
    published as ``BatchResult.pool`` by a pool-side
    :class:`~repro.core.engine.StageObserver` (extend
    :attr:`observers` for custom per-batch instrumentation).
    """

    def __init__(
        self,
        db: PatternDB | None = None,
        config: RTGConfig | None = None,
        n_workers: int | None = None,
    ) -> None:
        self.config = config or RTGConfig()
        if self.config.mode != "batch":
            raise ValueError(
                "worker pools run batch mode only; stream mode is served "
                f"by the serial StreamDriver (got mode={self.config.mode!r})"
            )
        self.db = db or PatternDB(
            max_examples=self.config.max_examples,
            durable=self.config.db_durable,
        )
        self.n_workers = (
            n_workers
            or self.config.pool_workers
            or max(1, multiprocessing.cpu_count() - 1)
        )
        if self.n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {self.n_workers}")
        #: shared runtime metrics registry: the in-process instance
        #: writes into it directly; worker deltas are merged in
        #: :meth:`_merge` and batch aggregates folded by the pool-level
        #: :class:`~repro.obs.observer.MetricsObserver`
        self.metrics = MetricsRegistry()
        # absorbs merged patterns with warm parsers, and serves
        # parser_for/parse needs of the parent process
        self._local = SequenceRTG(
            db=self.db, config=self.config, metrics=self.metrics
        )
        self._journal = PatternJournal()
        self._workers: list[_WorkerHandle | None] = [None] * self.n_workers
        self._closed = False
        #: test instrumentation: called after a batch's shards are
        #: dispatched, before outcomes are collected (crash injection)
        self._post_dispatch_hook = None
        self.telemetry = {
            "batches": 0,
            "spawns": 0,
            "respawns": 0,
            "sync_patterns": 0,
            "sync_bytes": 0,
            "seed_patterns": 0,
            "seed_bytes": 0,
        }
        self._pool_telemetry = _PoolTelemetry(self.telemetry)
        #: batch-level observers (``BatchResult.pool`` publisher by
        #: default); stage-level hooks fire inside the workers
        self.observers: list[StageObserver] = [self._pool_telemetry]
        if self.config.enable_metrics:
            # after _PoolTelemetry: folding reads ``result.pool``
            self.observers.append(
                MetricsObserver(
                    self.metrics,
                    db=self.db,
                    scan_backend=self.config.scanner.backend,
                    parse_backend=self.config.parser.backend,
                    analyze_backend=self.config.analyzer.backend,
                )
            )

    # -- lifecycle -------------------------------------------------------
    def __enter__(self) -> "PersistentParallelSequenceRTG":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Stop every worker and mark the engine unusable (idempotent).

        The shared database stays open — closing the pool is how a
        deployment hands off to `export`/`report` tooling.
        """
        if self._closed:
            return
        self._closed = True
        for handle in self._workers:
            if handle is None:
                continue
            try:
                handle.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            handle.conn.close()
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=5.0)
        self._workers = [None] * self.n_workers

    # -- routing and sync ------------------------------------------------
    def worker_for(self, service: str) -> int:
        """Sticky worker index owning *service* (stable across batches)."""
        return route_service(service, self.n_workers)

    def _seed_for(self, index: int) -> list[dict]:
        """Every known pattern of the services routed to shard *index*.

        Shipped once at (re)spawn: the shared database is the union of
        everything ever merged, so this replay reconstructs exactly the
        worker's last reported state.
        """
        out: list[dict] = []
        for service in self.db.services():
            if route_service(service, self.n_workers) != index:
                continue
            out.extend(p.to_dict() for p in self.db.load_service(service))
        return out

    def _spawn(self, index: int, respawn: bool = False) -> _WorkerHandle:
        parent_conn, child_conn = multiprocessing.Pipe()
        process = multiprocessing.Process(
            target=_worker_main,
            args=(child_conn, self.config, index),
            name=f"sequence-rtg-worker-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(
            index=index,
            process=process,
            conn=parent_conn,
            cursor=self._journal.head,
        )
        seed = self._seed_for(index)
        if seed:
            blob = pickle.dumps(seed)
            self.telemetry["seed_patterns"] += len(seed)
            self.telemetry["seed_bytes"] += len(blob)
            handle.conn.send(("sync", seed))
        self.telemetry["respawns" if respawn else "spawns"] += 1
        self._workers[index] = handle
        return handle

    def _ensure_worker(self, index: int) -> _WorkerHandle:
        handle = self._workers[index]
        if handle is None:
            return self._spawn(index)
        if not handle.process.is_alive():
            return self._respawn_after_failure(handle)
        return handle

    def _respawn_after_failure(self, handle: _WorkerHandle) -> _WorkerHandle:
        """Retire a dead worker's handle and bring up its replacement."""
        handle.conn.close()
        handle.process.join(timeout=5.0)
        replacement = self._spawn(handle.index, respawn=True)
        replacement.services.update(handle.services)
        return replacement

    def _delta_for(self, handle: _WorkerHandle) -> list[dict]:
        """Patterns new to this worker since its last sync — O(new).

        Entries the worker itself reported are skipped (it already has
        them); so are entries routed to other shards.  The cursor always
        advances to the journal head: skipped entries stay skippable
        forever, so they never need to be revisited.
        """
        entries = self._journal.since(handle.cursor)
        handle.cursor = self._journal.head
        return [
            e.pattern
            for e in entries
            if e.origin != handle.index
            and route_service(e.service, self.n_workers) == handle.index
        ]

    def publish_pattern(self, pattern) -> str:
        """Add a parent-side pattern (import, promotion, ad-hoc mining).

        Persists to the shared database and journals the addition so the
        owning worker receives it as a delta with its next batch instead
        of ever re-discovering it.  Returns the pattern id.
        """
        if self._closed:
            raise RuntimeError("engine is closed")
        pid = self._local.add_known_pattern(pattern)
        self._journal.append(pattern.service, pattern.to_dict(), origin=None)
        return pid

    # -- analysis --------------------------------------------------------
    def analyze_by_service(
        self, records: list[LogRecord], now: datetime | None = None
    ) -> BatchResult:
        """Analyse one batch across the persistent pool and merge results."""
        return self.analyze_sharded(
            shard_records(records, self.n_workers), now=now
        )

    def analyze_sharded(
        self, shards: list[list[LogRecord]], now: datetime | None = None
    ) -> BatchResult:
        """Analyse one pre-sharded batch across the persistent pool.

        *shards* must have exactly ``n_workers`` entries (empties
        allowed) with shard *i* holding only services that
        :func:`route_service` maps to *i* — the split
        :func:`shard_records` produces, which the serving tier's
        :class:`~repro.serve.router.ShardRouter` maintains incrementally
        so network batches skip the re-shard entirely.  Misrouted
        shards are not silently mined: cross-shard pattern collisions
        trip the disjoint-merge guard.
        """
        if self._closed:
            raise RuntimeError("engine is closed")
        if len(shards) != self.n_workers:
            raise ValueError(
                f"expected {self.n_workers} shards, got {len(shards)}"
            )
        result = BatchResult(n_records=sum(len(s) for s in shards))
        result.n_services = len({r.service for s in shards for r in s})
        for observer in self.observers:
            observer.on_batch_start(result)

        dispatched: list[tuple[_WorkerHandle, list[LogRecord]]] = []
        for index, shard in enumerate(shards):
            if not shard:
                continue
            handle = self._ensure_worker(index)
            handle.services.update(r.service for r in shard)
            if self.config.enable_metrics:
                # read before _delta_for advances the cursor to head
                self.metrics.gauge(
                    "rtg_journal_lag", METRIC_HELP["rtg_journal_lag"]
                ).set(self._journal.lag(handle.cursor), worker=str(index))
            sync = self._delta_for(handle)
            try:
                handle.conn.send(("batch", shard, sync, now))
            except (BrokenPipeError, OSError):
                # died since the liveness check; replay and re-dispatch
                handle = self._respawn_after_failure(handle)
                handle.conn.send(("batch", shard, self._delta_for(handle), now))
            self._pool_telemetry.dispatched(
                len(sync), len(pickle.dumps(sync)) if sync else 0
            )
            dispatched.append((handle, shard))

        if self._post_dispatch_hook is not None:
            self._post_dispatch_hook()

        outcomes: list[tuple[int, _ShardOutcome]] = []
        for handle, shard in dispatched:
            try:
                outcome = handle.conn.recv()
            except (EOFError, OSError):
                # the worker died mid-batch.  Nothing of this batch was
                # merged, so replaying its patterns from the shared DB
                # and re-dispatching the shard reproduces the lost work
                # exactly (the replayed state is the worker's last
                # merged state).
                handle = self._respawn_after_failure(handle)
                handle.conn.send(("batch", shard, self._delta_for(handle), now))
                outcome = handle.conn.recv()
            outcomes.append((handle.index, outcome))

        self._merge(outcomes, result, now=now)
        self.telemetry["batches"] += 1
        self.telemetry["sync_patterns"] += self._pool_telemetry.sync_patterns
        self.telemetry["sync_bytes"] += self._pool_telemetry.sync_bytes
        for observer in self.observers:
            observer.on_batch_end(result)
        return result

    def _merge(
        self,
        outcomes: list[tuple[int, _ShardOutcome]],
        result: BatchResult,
        now: datetime | None = None,
    ) -> None:
        guard = _DisjointMerge()
        for shard_index, outcome in outcomes:
            result.n_matched += outcome.n_matched
            result.n_unmatched += outcome.n_unmatched
            result.n_partitions += outcome.n_partitions
            result.n_below_threshold += outcome.n_below_threshold
            result.max_trie_nodes = max(
                result.max_trie_nodes, outcome.max_trie_nodes
            )
            for key, value in outcome.cache.items():
                result.cache[key] = result.cache.get(key, 0) + value
            # summed across workers: total CPU seconds per stage, not
            # wall clock (workers overlap)
            for key, value in outcome.timings.items():
                result.timings[key] = result.timings.get(key, 0.0) + value
            if outcome.metrics:
                self.metrics.merge(outcome.metrics)
            for pattern_dict in outcome.new_patterns:
                pattern = Pattern.from_dict(pattern_dict)
                guard.claim(pattern.id, shard_index)
                self._local.add_known_pattern(pattern, now=now)
                self._journal.append(
                    pattern.service, pattern_dict, origin=shard_index
                )
                result.n_new_patterns += 1
                result.new_patterns.append(pattern)
            for pid, n in outcome.match_counts.items():
                guard.claim(pid, shard_index)
                self.db.record_match(pid, n=n, now=now)
                for example in outcome.match_examples.get(pid, ()):
                    self.db.add_example(pid, example)

    # ------------------------------------------------------------------
    def process_stream(self, batches, now: datetime | None = None):
        """Run ``analyze_by_service`` for every batch; yield results.

        *batches* is any iterable of record lists — typically
        :meth:`repro.core.ingest.StreamIngester.batches_pipelined`, so
        ingest of batch *N+1* overlaps analysis of batch *N* while the
        workers overlap each other within every batch.
        """
        return drive_stream(self, batches, now=now)

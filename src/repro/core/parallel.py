"""Scale-out ``AnalyzeByService`` across processes.

"If the capacity of Sequence-RTG needed to be scaled up, the messages
could be divided simply by sending groups of services to any number
instances of Sequence-RTG, thanks to the newly introduced
AnalyzeByService method.  In this case each instance could have its own
database as there is no crossover with patterns between different
services." (paper §IV)

:class:`ParallelSequenceRTG` implements exactly that sharding with a
process pool: services are hashed into ``n_workers`` groups, each worker
runs a private Sequence-RTG instance (own scanner, own in-memory
database) seeded with the already-known patterns of its services, and
the parent merges the returned patterns and match statistics into the
shared database.  Because pattern ids are content-derived SHA1s, the
merged result is *identical* to a serial run over the same batch —
a property the test suite asserts.
"""

from __future__ import annotations

import multiprocessing
import zlib
from dataclasses import dataclass

from repro.core.config import RTGConfig
from repro.core.patterndb import PatternDB
from repro.core.pipeline import BatchResult, SequenceRTG
from repro.core.records import LogRecord

__all__ = ["ParallelSequenceRTG", "shard_records"]


def shard_records(
    records: list[LogRecord], n_shards: int
) -> list[list[LogRecord]]:
    """Partition records into service-disjoint shards.

    All records of one service land in the same shard (hash of the
    service name), so no two workers ever mine the same service.
    """
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    shards: list[list[LogRecord]] = [[] for _ in range(n_shards)]
    for record in records:
        # crc32 rather than hash(): stable across interpreter runs, so a
        # re-executed deployment shards identically
        shards[zlib.crc32(record.service.encode()) % n_shards].append(record)
    return shards


@dataclass(slots=True)
class _ShardTask:
    """Everything one worker needs (picklable)."""

    records: list[LogRecord]
    config: RTGConfig
    known_patterns: list[dict]  # Pattern.to_dict() of relevant services


@dataclass(slots=True)
class _ShardOutcome:
    n_matched: int
    n_unmatched: int
    n_partitions: int
    n_below_threshold: int
    max_trie_nodes: int
    new_patterns: list[dict]
    match_counts: dict[str, int]
    match_examples: dict[str, list[str]]
    cache: dict[str, int]


def _analyze_shard(task: _ShardTask) -> _ShardOutcome:
    """Run one private Sequence-RTG instance over a service shard."""
    from repro.analyzer.pattern import Pattern

    rtg = SequenceRTG(db=PatternDB(), config=task.config)
    known_support: dict[str, int] = {}
    for pattern_dict in task.known_patterns:
        pattern = Pattern.from_dict(pattern_dict)
        rtg.db.upsert(pattern)
        known_support[pattern.id] = pattern.support

    result = rtg.analyze_by_service(task.records)

    # one pass over the shard database: rows not previously known are new
    # patterns, known rows whose count grew report the delta as matches
    match_counts: dict[str, int] = {}
    match_examples: dict[str, list[str]] = {}
    new_patterns: list[dict] = []
    for row in rtg.db.rows():
        support = known_support.get(row.id)
        if support is None:
            new_patterns.append(row.to_pattern().to_dict())
        elif row.match_count > support:
            match_counts[row.id] = row.match_count - support
            match_examples[row.id] = row.examples
    return _ShardOutcome(
        n_matched=result.n_matched,
        n_unmatched=result.n_unmatched,
        n_partitions=result.n_partitions,
        n_below_threshold=result.n_below_threshold,
        max_trie_nodes=result.max_trie_nodes,
        new_patterns=new_patterns,
        match_counts=match_counts,
        match_examples=match_examples,
        cache=result.cache,
    )


class ParallelSequenceRTG:
    """Service-sharded, multi-process Sequence-RTG front end.

    Semantically equivalent to :class:`SequenceRTG.analyze_by_service`
    over the same batch; the difference is wall-clock time on multi-core
    hosts and the memory isolation between shards.
    """

    def __init__(
        self,
        db: PatternDB | None = None,
        config: RTGConfig | None = None,
        n_workers: int | None = None,
    ) -> None:
        self.config = config or RTGConfig()
        self.db = db or PatternDB(max_examples=self.config.max_examples)
        self.n_workers = n_workers or max(1, multiprocessing.cpu_count() - 1)
        # persistent in-process instance over the shared database: runs
        # single-shard batches directly (parser and fast-lane caches stay
        # warm across batches) and absorbs pool-merged patterns in place
        self._local = SequenceRTG(db=self.db, config=self.config)

    # ------------------------------------------------------------------
    def _known_for(self, services: set[str]) -> list[dict]:
        out: list[dict] = []
        for service in services:
            for pattern in self.db.load_service(service):
                out.append(pattern.to_dict())
        return out

    def analyze_by_service(self, records: list[LogRecord]) -> BatchResult:
        """Analyse one batch across the worker pool and merge results."""
        from repro.analyzer.pattern import Pattern

        shards = [s for s in shard_records(records, self.n_workers) if s]
        if len(shards) <= 1:
            # degenerate case: run in-process on the shared database via
            # the persistent instance — no shipping patterns to a worker,
            # no rebuilding parsers from scratch, warm caches throughout
            return self._local.analyze_by_service(records)

        tasks = [
            _ShardTask(
                records=shard,
                config=self.config,
                known_patterns=self._known_for({r.service for r in shard}),
            )
            for shard in shards
        ]
        with multiprocessing.Pool(processes=len(tasks)) as pool:
            outcomes = pool.map(_analyze_shard, tasks)

        result = BatchResult(n_records=len(records))
        result.n_services = len({r.service for r in records})
        for outcome in outcomes:
            result.n_matched += outcome.n_matched
            result.n_unmatched += outcome.n_unmatched
            result.n_partitions += outcome.n_partitions
            result.n_below_threshold += outcome.n_below_threshold
            result.max_trie_nodes = max(result.max_trie_nodes, outcome.max_trie_nodes)
            for key, value in outcome.cache.items():
                result.cache[key] = result.cache.get(key, 0) + value
            for pattern_dict in outcome.new_patterns:
                pattern = Pattern.from_dict(pattern_dict)
                # upsert + in-place parser extension: the local instance
                # keeps serving without rebuilding its parsers
                self._local.add_known_pattern(pattern)
                result.n_new_patterns += 1
                result.new_patterns.append(pattern)
            for pid, n in outcome.match_counts.items():
                self.db.record_match(pid, n=n)
                for example in outcome.match_examples.get(pid, ()):
                    self.db.add_example(pid, example)
        return result

"""Sequence-RTG core — the paper's primary contribution.

Ties the scanner, analyser and parser substrates into the
production-ready tool described in §III of the paper:

* :class:`~repro.core.ingest.StreamIngester` — JSON-lines stream input
  with configurable batch size;
* :class:`~repro.core.patterndb.PatternDB` — persistent SQL pattern
  store with reproducible SHA1 ids, per-pattern statistics and up to
  three example messages;
* :class:`~repro.core.engine.MiningEngine` — the ``AnalyzeByService``
  workflow (partition by service → scan → parse known → partition by
  token count → analyse → persist) as explicit stage objects with
  pluggable :class:`~repro.core.engine.StageObserver` instrumentation;
* :class:`~repro.core.pipeline.SequenceRTG` — the serial front end over
  the engine, plus the seminal ``Analyze`` mode for comparison;
* :mod:`repro.core.export` — syslog-ng patterndb XML, YAML and Logstash
  Grok exporters.
"""

from repro.core.config import RTGConfig
from repro.core.engine import (
    BatchResult,
    MiningEngine,
    PersistStage,
    ServiceBatchContext,
    StageObserver,
)
from repro.core.fastpath import FastPath, LRUCache, PatternJournal
from repro.core.ingest import StreamIngester, parse_record
from repro.core.parallel import (
    ParallelSequenceRTG,
    PersistentParallelSequenceRTG,
    route_service,
)
from repro.core.patterndb import PatternDB, PatternRow
from repro.core.pipeline import SequenceRTG
from repro.core.records import LogRecord

__all__ = [
    "RTGConfig",
    "FastPath",
    "LRUCache",
    "PatternJournal",
    "StreamIngester",
    "parse_record",
    "PatternDB",
    "PatternRow",
    "BatchResult",
    "MiningEngine",
    "PersistStage",
    "ServiceBatchContext",
    "StageObserver",
    "SequenceRTG",
    "ParallelSequenceRTG",
    "PersistentParallelSequenceRTG",
    "route_service",
    "LogRecord",
]

"""Data stream ingester.

"We added a listener for the command line that allows the data to be
piped in directly from the log management system without any message
pre-processing required and Sequence-RTG waits to execute until the
batch size is reached." (paper §III)

The ingester accepts an iterable of JSON lines (a file object, a pipe,
or any iterator of strings), validates the two-field schema, counts and
skips malformed items, and yields :class:`~repro.core.records.LogRecord`
batches of the configured size.  The final, possibly short, batch is
yielded on stream end unless ``drop_partial`` is set.

:meth:`StreamIngester.batches_pipelined` is the double-buffered variant:
a background reader thread parses and assembles batch *N+1* while the
caller is still analysing batch *N*, so JSON decoding overlaps analysis
instead of serialising with it.  Order is preserved (single reader,
FIFO queue) and closing the generator early stops the reader cleanly.
"""

from __future__ import annotations

import json
import logging
import queue
import threading
import time
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.core.records import LogRecord

__all__ = ["StreamIngester", "parse_record", "IngestStats"]

_log = logging.getLogger("repro.ingest")

#: queue marker for normal end of stream
_EOF = object()


def parse_record(line: str) -> LogRecord | None:
    """Parse one JSON stream item; return None when malformed.

    The schema is exactly two fields, ``service`` and ``message``, both
    strings.  Extra fields are tolerated (syslog-ng templates sometimes
    append metadata) but the two required ones must be present.
    """
    line = line.strip()
    if not line:
        return None
    try:
        obj = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(obj, dict):
        return None
    service = obj.get("service")
    message = obj.get("message")
    if not isinstance(service, str) or not isinstance(message, str) or not service:
        return None
    return LogRecord(service=service, message=message)


@dataclass(slots=True)
class IngestStats:
    """Counters accumulated while consuming the stream."""

    n_lines: int = 0
    n_records: int = 0
    n_malformed: int = 0
    n_batches: int = 0


@dataclass(slots=True)
class StreamIngester:
    """Batch JSON-lines input for the analysis pipeline.

    With a :class:`~repro.obs.metrics.MetricsRegistry` attached via
    *metrics*, the :class:`IngestStats` counters are also published as
    ``rtg_ingest_lines_total`` / ``rtg_ingest_malformed_total`` (flushed
    once per yielded batch, not per line, so the hot loop stays free of
    registry locking) — ingest health is scrapeable, not just visible on
    the dataclass after the fact.
    """

    batch_size: int = 100_000
    drop_partial: bool = False
    #: seconds :meth:`batches_pipelined` waits for its reader thread to
    #: exit when the generator closes; a reader still alive after this
    #: is logged as a leak (and counted, when *metrics* is attached)
    join_timeout: float = 5.0
    #: optional :class:`~repro.obs.metrics.MetricsRegistry`
    metrics: object | None = None
    stats: IngestStats = field(default_factory=IngestStats)
    _lines_counter: object | None = field(init=False, default=None, repr=False)
    _malformed_counter: object | None = field(init=False, default=None, repr=False)
    _leak_counter: object | None = field(init=False, default=None, repr=False)

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.join_timeout <= 0:
            raise ValueError(
                f"join_timeout must be positive, got {self.join_timeout}"
            )
        if self.metrics is not None:
            from repro.obs.observer import METRIC_HELP

            self._lines_counter = self.metrics.counter(
                "rtg_ingest_lines_total", METRIC_HELP["rtg_ingest_lines_total"]
            )
            self._malformed_counter = self.metrics.counter(
                "rtg_ingest_malformed_total",
                METRIC_HELP["rtg_ingest_malformed_total"],
            )
            self._leak_counter = self.metrics.counter(
                "rtg_ingest_reader_leaks_total",
                METRIC_HELP["rtg_ingest_reader_leaks_total"],
            )

    def _publish(self, lines: int, malformed: int) -> None:
        if self._lines_counter is not None and lines:
            self._lines_counter.inc(lines)
        if self._malformed_counter is not None and malformed:
            self._malformed_counter.inc(malformed)

    def batches(self, lines: Iterable[str]) -> Iterator[list[LogRecord]]:
        """Yield batches of parsed records from an iterable of JSON lines."""
        batch: list[LogRecord] = []
        pending_lines = pending_malformed = 0
        try:
            for line in lines:
                self.stats.n_lines += 1
                pending_lines += 1
                record = parse_record(line)
                if record is None:
                    self.stats.n_malformed += 1
                    pending_malformed += 1
                    continue
                self.stats.n_records += 1
                batch.append(record)
                if len(batch) >= self.batch_size:
                    self.stats.n_batches += 1
                    self._publish(pending_lines, pending_malformed)
                    pending_lines = pending_malformed = 0
                    yield batch
                    batch = []
            if batch and not self.drop_partial:
                self.stats.n_batches += 1
                yield batch
        finally:
            self._publish(pending_lines, pending_malformed)

    def batches_pipelined(
        self,
        lines: Iterable[str],
        prefetch: int = 2,
        join_timeout: float | None = None,
    ) -> Iterator[list[LogRecord]]:
        """Yield batches with parsing pipelined ahead of the consumer.

        A daemon reader thread runs :meth:`batches` and feeds a bounded
        queue of *prefetch* ready batches; while the caller analyses one
        batch, the reader is already JSON-decoding the next.  Batches
        arrive in exactly the order :meth:`batches` would produce them.
        Closing the generator early (or abandoning it) signals the
        reader to stop; batches already yielded are unaffected and the
        source iterable is not consumed further than the prefetch
        window.  An exception raised by the source is re-raised here.

        A consumer that dies mid-iteration must ``close()`` this
        generator (``drive_stream`` and the CLI do, in their
        ``finally``) for the cleanup to run immediately — a suspended
        generator's own ``finally`` otherwise waits for garbage
        collection.  Cleanup itself is robust either way: the stop flag
        is set and the queue drained *until the reader thread exits*, so
        a reader blocked on a full queue can never be leaked behind a
        single drain pass.  A reader stuck inside the *source* (a socket
        read, a blocked pipe) cannot be interrupted from here; after
        *join_timeout* seconds (:attr:`join_timeout` unless overridden)
        the leak is logged and counted instead of silently abandoned.
        """
        if join_timeout is None:
            join_timeout = self.join_timeout
        if join_timeout <= 0:
            raise ValueError(f"join_timeout must be positive, got {join_timeout}")
        if prefetch < 1:
            raise ValueError(f"prefetch must be >= 1, got {prefetch}")
        ready: queue.Queue = queue.Queue(maxsize=prefetch)
        stop = threading.Event()

        def offer(item) -> None:
            # a plain put() could block forever against a consumer that
            # went away; poll the stop flag while waiting for space
            while not stop.is_set():
                try:
                    ready.put(item, timeout=0.05)
                    return
                except queue.Full:
                    continue

        def read() -> None:
            try:
                for batch in self.batches(lines):
                    offer(batch)
                    if stop.is_set():
                        return
                offer(_EOF)
            except BaseException as exc:  # forwarded to the consumer
                offer(exc)

        reader = threading.Thread(
            target=read, name="ingest-pipeline", daemon=True
        )
        reader.start()
        try:
            while True:
                item = ready.get()
                if item is _EOF:
                    break
                if isinstance(item, BaseException):
                    raise item
                yield item
        finally:
            stop.set()
            # keep draining while the reader winds down: one drain pass
            # is not enough — the reader may complete a blocked put()
            # right after it and needs the stop-flag poll (≤50ms) to
            # notice it should exit
            deadline = time.monotonic() + join_timeout
            while reader.is_alive() and time.monotonic() < deadline:
                try:
                    ready.get_nowait()
                except queue.Empty:
                    pass
                reader.join(timeout=0.05)
            if reader.is_alive():
                _log.warning(
                    "pipelined ingest reader did not exit within %.1fs; "
                    "the daemon thread is leaked (source is blocking?)",
                    join_timeout,
                )
                if self._leak_counter is not None:
                    self._leak_counter.inc()
            # release anything still buffered so its memory frees now
            while True:
                try:
                    ready.get_nowait()
                except queue.Empty:
                    break

    def batches_from_records(
        self, records: Iterable[LogRecord]
    ) -> Iterator[list[LogRecord]]:
        """Batch pre-parsed records (used by the in-process simulations).

        Pre-parsed records are still stream items: each counts as a
        line (none can be malformed), so :class:`IngestStats` reads the
        same whichever entry point fed the run.
        """
        batch: list[LogRecord] = []
        pending_lines = 0
        try:
            for record in records:
                self.stats.n_lines += 1
                pending_lines += 1
                self.stats.n_records += 1
                batch.append(record)
                if len(batch) >= self.batch_size:
                    self.stats.n_batches += 1
                    self._publish(pending_lines, 0)
                    pending_lines = 0
                    yield batch
                    batch = []
            if batch and not self.drop_partial:
                self.stats.n_batches += 1
                yield batch
        finally:
            self._publish(pending_lines, 0)

"""Logstash Grok export (paper Fig. 4).

Renders each pattern as a ``filter { grok { ... } }`` block whose
``add_tag`` carries the reproducible pattern id, matching the figure::

    filter {
      grok {
        match => {"message" => "%{DATA:action} from %{IP:srcip} port %{INT:srcport}"}
        add_tag => ["2908692b...", "pattern_id"]
      }
    }
"""

from __future__ import annotations

from repro.analyzer.pattern import Pattern, VarClass
from repro.core.patterndb import PatternRow

__all__ = ["to_grok", "pattern_to_grok"]

_GROK_FOR = {
    VarClass.INTEGER: "INT",
    VarClass.FLOAT: "NUMBER",
    VarClass.IPV4: "IP",
    VarClass.IPV6: "IP",
    VarClass.MAC: "MAC",
    VarClass.TIME: "DATA",
    VarClass.URL: "URI",
    VarClass.PATH: "PATH",
    VarClass.EMAIL: "EMAILADDRESS",
    VarClass.HOST: "HOSTNAME",
    VarClass.STRING: "DATA",
    VarClass.ALNUM: "NOTSPACE",
    VarClass.REST: "GREEDYDATA",
}

# characters with meaning in the regexes grok compiles to
_REGEX_SPECIALS = set(r"\.^$|?*+()[]{}")


def _escape_static(text: str) -> str:
    return "".join("\\" + c if c in _REGEX_SPECIALS else c for c in text)


def pattern_to_grok(pattern: Pattern) -> str:
    """Render one pattern as a grok match expression."""
    parts: list[str] = []
    for i, tok in enumerate(pattern.tokens):
        if i > 0 and tok.is_space_before:
            parts.append(" ")
        if tok.is_variable:
            parts.append("%{" + _GROK_FOR[tok.var_class] + ":" + tok.name + "}")
        else:
            parts.append(_escape_static(tok.text))
    return "".join(parts)


def to_grok(rows: list[PatternRow]) -> str:
    """Render pattern rows as Logstash filter blocks."""
    blocks: list[str] = []
    for row in rows:
        pattern = row.to_pattern()
        expr = pattern_to_grok(pattern).replace("\\", "\\\\").replace('"', '\\"')
        blocks.append(
            "filter {\n"
            "  grok {\n"
            f'    match => {{"message" => "{expr}"}}\n'
            f'    add_tag => ["{row.id}", "pattern_id"]\n'
            "  }\n"
            "}"
        )
    return "\n".join(blocks) + ("\n" if blocks else "")

"""YAML pattern export.

"We also implemented a YAML version that can be used alongside a DevOps
tool such as Puppet to build the pattern database XML.  YAML can be
easier to use if files are maintained by hand" (paper §III).

Emitted by hand (no external YAML dependency) using a conservative
subset: block mappings/sequences with double-quoted scalars, which every
YAML 1.1/1.2 loader accepts.
"""

from __future__ import annotations

from repro.core.export.syslog_ng import pattern_to_syslog_ng
from repro.core.patterndb import PatternRow

__all__ = ["to_yaml"]


def _quote(s: str) -> str:
    """Double-quote a scalar, escaping per YAML double-quote rules."""
    out = s.replace("\\", "\\\\").replace('"', '\\"')
    out = out.replace("\n", "\\n").replace("\t", "\\t")
    return f'"{out}"'


def to_yaml(rows: list[PatternRow]) -> str:
    """Render pattern rows as a YAML document grouped by service."""
    lines: list[str] = ["---", "patterndb:"]
    by_service: dict[str, list[PatternRow]] = {}
    for row in rows:
        by_service.setdefault(row.service, []).append(row)
    if not by_service:
        return "---\npatterndb: {}\n"
    for service in sorted(by_service):
        lines.append(f"  {_quote(service)}:")
        for row in by_service[service]:
            pattern = row.to_pattern()
            lines.append(f"    - id: {_quote(row.id)}")
            lines.append(f"      pattern: {_quote(row.pattern_text)}")
            lines.append(
                f"      syslog_ng_pattern: {_quote(pattern_to_syslog_ng(pattern))}"
            )
            lines.append(f"      match_count: {row.match_count}")
            lines.append(f"      complexity: {row.complexity:.3f}")
            lines.append(f"      first_seen: {_quote(row.first_seen)}")
            lines.append(f"      last_matched: {_quote(row.last_matched or '')}")
            if row.examples:
                lines.append("      examples:")
                for message in row.examples:
                    lines.append(f"        - {_quote(message)}")
            else:
                lines.append("      examples: []")
    return "\n".join(lines) + "\n"

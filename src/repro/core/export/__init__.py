"""Pattern exporters (paper §III, "Exporting the Patterns for Other Parsers").

Three formats for two common log management tools:

* **syslog-ng patterndb XML** (Fig. 3) — full ruleset documents with the
  stored example messages as ``test_message`` test cases;
* **YAML** — the same information in a form that "can be used alongside
  a DevOps tool such as Puppet to build the pattern database XML";
* **Logstash Grok** (Fig. 4) — ``filter { grok { ... } }`` blocks with
  the pattern id added as a tag.

:func:`export_patterns` is the paper's ``ExportPatterns`` function: it
pulls rows from the pattern database, applies the review-selection
filters (minimum match count, maximum complexity score) and renders the
requested format.
"""

from __future__ import annotations

from repro.core.export.grok import to_grok
from repro.core.export.syslog_ng import to_patterndb_xml
from repro.core.export.yaml_export import to_yaml
from repro.core.patterndb import PatternDB

__all__ = ["to_patterndb_xml", "to_yaml", "to_grok", "export_patterns", "FORMATS"]

FORMATS = ("syslog-ng", "yaml", "grok")


def export_patterns(
    db: PatternDB,
    fmt: str = "syslog-ng",
    service: str | None = None,
    min_count: int = 1,
    max_complexity: float = 1.0,
) -> str:
    """Render stored patterns in *fmt* after quality filtering.

    The complexity score "can then be used to select only the strongest
    patterns when exporting them for review and integration with other
    systems" (§III) — rows above *max_complexity* or below *min_count*
    matches are excluded.
    """
    rows = db.rows(service=service, min_count=min_count, max_complexity=max_complexity)
    if fmt == "syslog-ng":
        return to_patterndb_xml(rows)
    if fmt == "yaml":
        return to_yaml(rows)
    if fmt == "grok":
        return to_grok(rows)
    raise ValueError(f"unknown export format {fmt!r}; expected one of {FORMATS}")

"""syslog-ng patterndb XML export (paper Fig. 3).

Each service becomes a ``<ruleset>``, each pattern a ``<rule>`` whose
``id`` is the reproducible SHA1 pattern id.  Variables are translated to
syslog-ng db-parser pattern parsers (``@NUMBER:name@``, ``@IPv4:name@``,
...), and the stored example messages are emitted as ``test_message``
elements "used by syslog-ng to ensure that all the example messages
match their pattern, and no other in the whole pattern database" (§III).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from xml.dom import minidom

from repro.analyzer.pattern import Pattern, VarClass
from repro.core.patterndb import PatternRow

__all__ = ["to_patterndb_xml", "pattern_to_syslog_ng"]

# syslog-ng radix-tree parser for each variable class.  TIME has no
# dedicated db-parser; a conservative PCRE covers the layouts we emit.
_TIME_PCRE = r"[0-9A-Za-z:,./-]+(?: [0-9A-Za-z:,./-]+){0,4}"


def _parser_for(var_class: VarClass, name: str, last: bool) -> str:
    if var_class is VarClass.INTEGER:
        return f"@NUMBER:{name}@"
    if var_class is VarClass.FLOAT:
        return f"@FLOAT:{name}@"
    if var_class is VarClass.IPV4:
        return f"@IPv4:{name}@"
    if var_class is VarClass.IPV6:
        return f"@IPv6:{name}@"
    if var_class is VarClass.MAC:
        return f"@MACADDR:{name}@"
    if var_class is VarClass.EMAIL:
        return f"@EMAIL:{name}@"
    if var_class is VarClass.HOST:
        return f"@HOSTNAME:{name}@"
    if var_class is VarClass.TIME:
        return f"@PCRE:{name}:{_TIME_PCRE}@"
    if var_class is VarClass.REST:
        return f"@ANYSTRING:{name}@"
    # STRING / ALNUM / URL / PATH: any run of non-space characters, or the
    # whole remainder when the variable closes the pattern
    if last:
        return f"@ANYSTRING:{name}@"
    return f"@ESTRING:{name}: @"


def pattern_to_syslog_ng(pattern: Pattern) -> str:
    """Render one pattern in syslog-ng db-parser syntax."""
    parts: list[str] = []
    n = len(pattern.tokens)
    swallow_space = False  # previous ESTRING consumed its space delimiter
    for i, tok in enumerate(pattern.tokens):
        rendered_space = " " if (i > 0 and tok.is_space_before) else ""
        if swallow_space:
            rendered_space = ""
            swallow_space = False
        if tok.is_variable:
            last = i == n - 1
            piece = _parser_for(tok.var_class, tok.name, last)
            # ESTRING matches up to *and including* its delimiter, so the
            # space before the next token is already eaten by this parser
            swallow_space = piece.startswith("@ESTRING")
            parts.append(rendered_space + piece)
        else:
            # '@' delimits parsers in patterndb patterns; escape literals
            parts.append(rendered_space + tok.text.replace("@", "@@"))
    return "".join(parts)


def to_patterndb_xml(rows: list[PatternRow], version: str = "5") -> str:
    """Render pattern rows as a complete syslog-ng patterndb document."""
    root = ET.Element("patterndb", version=version)
    by_service: dict[str, list[PatternRow]] = {}
    for row in rows:
        by_service.setdefault(row.service, []).append(row)

    for service in sorted(by_service):
        ruleset = ET.SubElement(
            root, "ruleset", name=service, id=f"sequence-rtg-{service}"
        )
        patterns_el = ET.SubElement(ruleset, "patterns")
        ET.SubElement(patterns_el, "pattern").text = service
        rules = ET.SubElement(ruleset, "rules")
        for row in by_service[service]:
            pattern = row.to_pattern()
            rule = ET.SubElement(
                rules,
                "rule",
                id=row.id,
                provider="sequence-rtg",
                **{"class": "system"},
            )
            rp = ET.SubElement(rule, "patterns")
            ET.SubElement(rp, "pattern").text = pattern_to_syslog_ng(pattern)
            if row.examples:
                examples = ET.SubElement(rule, "examples")
                for message in row.examples:
                    example = ET.SubElement(examples, "example")
                    ET.SubElement(example, "test_message", program=service).text = (
                        message
                    )
            values = ET.SubElement(rule, "values")
            for key, value in (
                ("sequence-rtg.match_count", str(row.match_count)),
                ("sequence-rtg.complexity", f"{row.complexity:.3f}"),
                ("sequence-rtg.first_seen", row.first_seen),
                ("sequence-rtg.last_matched", row.last_matched or ""),
            ):
                ET.SubElement(values, "value", name=key).text = value

    raw = ET.tostring(root, encoding="unicode")
    return minidom.parseString(raw).toprettyxml(indent="  ")

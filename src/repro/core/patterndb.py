"""Persistent pattern store.

"Analysing system logs in a continuous way requires to be able to
preserve patterns between the processing of different message batches.
To this end, Sequence-RTG stores the patterns in a SQL database in a
one-to-many relationship with their related services.  We also include
up to three unique examples for each pattern ...  We label each pattern
with a unique ID ... a SHA1 hash of the concatenated text of the pattern
and the service.  Moreover, we attach a set of statistics ... the number
of times that the pattern has been matched since first discovered
(count), how recently it was last matched (last matched date) and a
calculated complexity score." (paper §III)

Implemented over sqlite3 so the store works in-memory for tests and on
disk in production, with the exact schema shape the paper describes.
"""

from __future__ import annotations

import json
import sqlite3
from contextlib import contextmanager
from dataclasses import dataclass
from datetime import datetime, timedelta, timezone

from repro.analyzer.pattern import Pattern

__all__ = ["PatternDB", "PatternRow"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS services (
    id   INTEGER PRIMARY KEY AUTOINCREMENT,
    name TEXT UNIQUE NOT NULL
);
CREATE TABLE IF NOT EXISTS patterns (
    id           TEXT PRIMARY KEY,
    service_id   INTEGER NOT NULL REFERENCES services(id),
    pattern_text TEXT NOT NULL,
    tokens_json  TEXT NOT NULL,
    complexity   REAL NOT NULL,
    match_count  INTEGER NOT NULL DEFAULT 0,
    first_seen   TEXT NOT NULL,
    last_matched TEXT
);
CREATE INDEX IF NOT EXISTS idx_patterns_service ON patterns(service_id);
CREATE TABLE IF NOT EXISTS examples (
    pattern_id TEXT NOT NULL REFERENCES patterns(id) ON DELETE CASCADE,
    seq        INTEGER NOT NULL,
    message    TEXT NOT NULL,
    PRIMARY KEY (pattern_id, seq)
);
"""


def _utcnow() -> datetime:
    return datetime.now(timezone.utc)


@dataclass(slots=True)
class PatternRow:
    """One stored pattern with its statistics."""

    id: str
    service: str
    pattern_text: str
    complexity: float
    match_count: int
    first_seen: str
    last_matched: str | None
    examples: list[str]
    tokens_json: str

    def to_pattern(self) -> Pattern:
        pattern = Pattern.from_dict(json.loads(self.tokens_json))
        pattern.service = self.service
        pattern.support = self.match_count
        pattern.examples = list(self.examples)
        return pattern


class PatternDB:
    """SQLite-backed pattern persistence."""

    def __init__(
        self,
        path: str = ":memory:",
        max_examples: int = 3,
        durable: bool = False,
    ) -> None:
        # the serving tier mines on a dispatcher thread while the CLI
        # thread created this object; access is handed off, never
        # concurrent, and SQLite's serialized mode (threadsafety == 3)
        # locks at the C level anyway — keep the Python-side thread
        # check only when the library cannot protect itself
        self._conn = sqlite3.connect(
            path, check_same_thread=sqlite3.threadsafety != 3
        )
        self._conn.execute("PRAGMA foreign_keys = ON")
        if not durable:
            # WAL keeps readers unblocked and turns the per-commit cost
            # into a sequential log append; NORMAL syncs only at WAL
            # checkpoints.  A crash can lose the last commits but never
            # corrupts the DB — acceptable for mined patterns, which the
            # next batches re-discover.  (In-memory DBs report "memory"
            # and keep their journal mode; the pragmas are harmless.)
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        self.max_examples = max_examples
        self._tx_depth = 0

    def close(self) -> None:
        self._conn.close()

    # ------------------------------------------------------------------
    @contextmanager
    def transaction(self):
        """Batch many writes into one commit.

        Inside the block every write method (:meth:`upsert`,
        :meth:`add_example`, :meth:`record_match`, ...) defers its
        commit; the block commits once on success and rolls everything
        back on error.  Nesting is allowed — the outermost block owns
        the commit.  ``PersistStage`` wraps each service's batch
        outcome in one transaction, so a batch costs one fsync per
        touched service instead of one per row.
        """
        if self._tx_depth:
            self._tx_depth += 1
            try:
                yield self
            finally:
                self._tx_depth -= 1
            return
        self._tx_depth = 1
        try:
            yield self
        except BaseException:
            self._conn.rollback()
            raise
        else:
            self._conn.commit()
        finally:
            self._tx_depth = 0

    def _commit(self) -> None:
        """Commit now, unless an enclosing :meth:`transaction` owns it."""
        if not self._tx_depth:
            self._conn.commit()

    def __enter__(self) -> "PatternDB":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _service_id(self, name: str) -> int:
        cur = self._conn.execute(
            "INSERT INTO services(name) VALUES (?) ON CONFLICT(name) DO NOTHING",
            (name,),
        )
        if cur.lastrowid:
            row = self._conn.execute(
                "SELECT id FROM services WHERE name = ?", (name,)
            ).fetchone()
            return int(row[0])
        row = self._conn.execute(
            "SELECT id FROM services WHERE name = ?", (name,)
        ).fetchone()
        return int(row[0])

    # ------------------------------------------------------------------
    def upsert(self, pattern: Pattern, now: datetime | None = None) -> str:
        """Insert *pattern* or fold its support/examples into the stored row.

        Returns the pattern id.  The id is content-derived (SHA1 of text +
        service), so re-discovering a pattern in a later batch updates
        the existing row instead of duplicating it.
        """
        if not pattern.service:
            raise ValueError("pattern must carry a service before persisting")
        now = now or _utcnow()
        stamp = now.isoformat()
        pid = pattern.id
        service_id = self._service_id(pattern.service)
        existing = self._conn.execute(
            "SELECT match_count FROM patterns WHERE id = ?", (pid,)
        ).fetchone()
        if existing is None:
            self._conn.execute(
                "INSERT INTO patterns(id, service_id, pattern_text, tokens_json,"
                " complexity, match_count, first_seen, last_matched)"
                " VALUES (?,?,?,?,?,?,?,?)",
                (
                    pid,
                    service_id,
                    pattern.text,
                    json.dumps(pattern.to_dict()),
                    pattern.complexity,
                    pattern.support,
                    stamp,
                    stamp,
                ),
            )
        else:
            self._conn.execute(
                "UPDATE patterns SET match_count = match_count + ?,"
                " last_matched = ? WHERE id = ?",
                (pattern.support, stamp, pid),
            )
        for example in pattern.examples:
            self._add_example(pid, example)
        self._commit()
        return pid

    def add_example(self, pattern_id: str, message: str) -> None:
        """Store *message* as an example of the pattern if new and under cap."""
        self._add_example(pattern_id, message)
        self._commit()

    def _add_example(self, pattern_id: str, message: str) -> None:
        rows = self._conn.execute(
            "SELECT seq, message FROM examples WHERE pattern_id = ? ORDER BY seq",
            (pattern_id,),
        ).fetchall()
        if len(rows) >= self.max_examples:
            return
        if any(message == m for _, m in rows):
            return
        next_seq = (rows[-1][0] + 1) if rows else 0
        self._conn.execute(
            "INSERT INTO examples(pattern_id, seq, message) VALUES (?,?,?)",
            (pattern_id, next_seq, message),
        )

    # ------------------------------------------------------------------
    def record_match(
        self, pattern_id: str, n: int = 1, now: datetime | None = None
    ) -> None:
        """Bump the match count and last-matched date of a stored pattern."""
        now = now or _utcnow()
        self._conn.execute(
            "UPDATE patterns SET match_count = match_count + ?, last_matched = ?"
            " WHERE id = ?",
            (n, now.isoformat(), pattern_id),
        )
        self._commit()

    def record_matches(
        self, counts: dict[str, int], now: datetime | None = None
    ) -> None:
        """Bump many patterns' match statistics in one ``executemany``.

        *counts* maps pattern id to the number of new matches; all rows
        share one last-matched stamp.  Equivalent to calling
        :meth:`record_match` per id, minus the per-row statement and
        commit overhead.
        """
        if not counts:
            return
        stamp = (now or _utcnow()).isoformat()
        self._conn.executemany(
            "UPDATE patterns SET match_count = match_count + ?, last_matched = ?"
            " WHERE id = ?",
            [(n, stamp, pid) for pid, n in counts.items()],
        )
        self._commit()

    # ------------------------------------------------------------------
    def services(self) -> list[str]:
        rows = self._conn.execute(
            "SELECT name FROM services ORDER BY name"
        ).fetchall()
        return [r[0] for r in rows]

    def load_service(self, service: str) -> list[Pattern]:
        """Load all patterns of one service as live Pattern objects."""
        return [row.to_pattern() for row in self.rows(service=service)]

    def rows(
        self,
        service: str | None = None,
        min_count: int = 0,
        max_complexity: float = 1.0,
    ) -> list[PatternRow]:
        """Fetch stored rows, optionally filtered for export selection."""
        query = (
            "SELECT p.id, s.name, p.pattern_text, p.tokens_json, p.complexity,"
            " p.match_count, p.first_seen, p.last_matched"
            " FROM patterns p JOIN services s ON s.id = p.service_id"
            " WHERE p.match_count >= ? AND p.complexity <= ?"
        )
        params: list = [min_count, max_complexity]
        if service is not None:
            query += " AND s.name = ?"
            params.append(service)
        query += " ORDER BY s.name, p.match_count DESC"
        out: list[PatternRow] = []
        for pid, svc, text, tokens_json, cx, count, first, last in self._conn.execute(
            query, params
        ):
            examples = [
                m
                for (m,) in self._conn.execute(
                    "SELECT message FROM examples WHERE pattern_id = ? ORDER BY seq",
                    (pid,),
                )
            ]
            out.append(
                PatternRow(
                    id=pid,
                    service=svc,
                    pattern_text=text,
                    complexity=cx,
                    match_count=count,
                    first_seen=first,
                    last_matched=last,
                    examples=examples,
                    tokens_json=tokens_json,
                )
            )
        return out

    # ------------------------------------------------------------------
    def prune(self, save_threshold: int) -> int:
        """Drop patterns matched fewer than *save_threshold* times.

        Implements the paper's monitoring guidance for the rare-message
        limitation: "Any pattern whose count of matches is less than the
        threshold is considered useless and thus not saved."
        """
        cur = self._conn.execute(
            "DELETE FROM patterns WHERE match_count < ?", (save_threshold,)
        )
        self._conn.execute(
            "DELETE FROM examples WHERE pattern_id NOT IN (SELECT id FROM patterns)"
        )
        self._commit()
        return cur.rowcount

    # ------------------------------------------------------------------
    def delete_patterns(self, ids) -> int:
        """Delete patterns (and their examples) by id; returns how many.

        The removal half of stream-mode pattern churn: drift
        maintenance retires subsumed or split patterns, TTL eviction
        retires stale ones.  Callers holding cached parsers for the
        affected services must retire them too
        (:meth:`repro.core.pipeline.SequenceRTG.retire_patterns` does
        both sides).
        """
        ids = list(ids)
        if not ids:
            return 0
        with self.transaction():
            self._conn.executemany(
                "DELETE FROM examples WHERE pattern_id = ?",
                [(pid,) for pid in ids],
            )
            cur = self._conn.executemany(
                "DELETE FROM patterns WHERE id = ?", [(pid,) for pid in ids]
            )
            removed = cur.rowcount
        return removed

    def stale_patterns(
        self, ttl_days: float, now: datetime | None = None
    ) -> list[tuple[str, str]]:
        """``(service, pattern id)`` of rows last matched too long ago.

        A pattern is stale when its ``last_matched`` date — which every
        match and rediscovery refreshes — is older than *ttl_days*
        before *now*.  Stamps are ISO-8601 strings from a single writer,
        so the comparison is lexicographic (SQLite has no datetime
        type); rows with no ``last_matched`` are never stale.
        """
        cutoff = ((now or _utcnow()) - timedelta(days=ttl_days)).isoformat()
        return [
            (svc, pid)
            for svc, pid in self._conn.execute(
                "SELECT s.name, p.id FROM patterns p"
                " JOIN services s ON s.id = p.service_id"
                " WHERE p.last_matched IS NOT NULL AND p.last_matched < ?"
                " ORDER BY s.name, p.id",
                (cutoff,),
            )
        ]

    def evict_stale(self, ttl_days: float, now: datetime | None = None) -> int:
        """Delete every stale pattern (see :meth:`stale_patterns`)."""
        stale = self.stale_patterns(ttl_days, now=now)
        return self.delete_patterns(pid for _, pid in stale)

    # ------------------------------------------------------------------
    def merge_from(self, other: "PatternDB") -> int:
        """Fold every pattern of *other* into this database.

        Supports the paper's scale-out deployment (§IV): each
        Sequence-RTG instance owns the services it was sent and "each
        instance could have its own database as there is no crossover
        with patterns between different services" — a central database
        is then the union of the instance databases.  Content-derived
        ids make the merge idempotent; match counts accumulate.

        Returns the number of patterns folded in.
        """
        n = 0
        with self.transaction():
            for row in other.rows():
                pattern = row.to_pattern()
                pattern.support = row.match_count
                self.upsert(pattern)
                n += 1
        return n

    def dump(self) -> list[dict]:
        """Serialise the whole database to JSON-compatible dictionaries."""
        out = []
        for row in self.rows():
            out.append(
                {
                    "id": row.id,
                    "service": row.service,
                    "pattern": row.pattern_text,
                    "tokens": json.loads(row.tokens_json),
                    "complexity": row.complexity,
                    "match_count": row.match_count,
                    "first_seen": row.first_seen,
                    "last_matched": row.last_matched,
                    "examples": row.examples,
                }
            )
        return out

    @classmethod
    def from_dump(cls, dump: list[dict], path: str = ":memory:") -> "PatternDB":
        """Rebuild a database from :meth:`dump` output."""
        db = cls(path)
        with db.transaction():
            for entry in dump:
                pattern = Pattern.from_dict(entry["tokens"])
                pattern.service = entry["service"]
                pattern.support = entry["match_count"]
                pattern.examples = list(entry["examples"])
                db.upsert(pattern)
        return db

    def counts(self) -> dict[str, int]:
        """Row counts per table (monitoring/telemetry)."""
        out = {}
        for table in ("services", "patterns", "examples"):
            (n,) = self._conn.execute(f"SELECT COUNT(*) FROM {table}").fetchone()
            out[table] = n
        return out

    def counts_by_service(self) -> dict[str, int]:
        """Stored patterns per service, for the DB growth gauges
        (:func:`repro.obs.observer.observe_patterndb`)."""
        return dict(
            self._conn.execute(
                "SELECT s.name, COUNT(p.id) FROM services s"
                " LEFT JOIN patterns p ON p.service_id = s.id"
                " GROUP BY s.name ORDER BY s.name"
            ).fetchall()
        )
